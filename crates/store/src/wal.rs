//! The append-only write-ahead log.
//!
//! # Record framing
//!
//! ```text
//! [len: u32 BE] [crc32(payload): u32 BE] [payload: len bytes]
//! ```
//!
//! Payloads carry one logical operation each, identified by the first byte:
//!
//! | tag    | record                                                         |
//! |--------|----------------------------------------------------------------|
//! | `0x01` | tuple op: `insert: u8`, `node: u32`, tuple encoding            |
//! | `0x02` | link op: `add: u8`, [`LinkRecord`] body                        |
//! | `0x03` | aggregate-provenance op: `install: u8`, node, relation, group  |
//! |        | key values, and (when installing) the prov + ruleExec tuples   |
//! | `0x10` | commit: `seq: u64`, `time: f64` bit pattern as `u64`           |
//!
//! Operations are *logical intents* (the arguments of `insert_shared` /
//! `delete`, not their effects): replaying them through the identical table
//! code reproduces every effect — duplicate-count increments, keyed
//! replacement, decrement-vs-remove — deterministically.
//!
//! # Batching and durability
//!
//! The engine buffers operations per barrier window and appends them as one
//! batch closed by a commit record.  Replay applies only batches closed by
//! a commit; a crash mid-write leaves a torn tail that [`read_wal`] detects
//! (short record, checksum mismatch, undecodable payload, or trailing
//! operations with no commit) and cleanly ignores.  Reopening truncates the
//! file back to the last committed byte.  The [`Durability`] knob decides
//! when `fsync` runs: never, once per committed batch (default), or after
//! every record.

use crate::codec::{self, CodecError, Reader};
use crate::crc32::crc32;
use exspan_types::symbol::RelId;
use exspan_types::tuple::Tuple;
use exspan_types::value::Value;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

const TAG_TUPLE: u8 = 0x01;
const TAG_LINK: u8 = 0x02;
const TAG_AGG_PROV: u8 = 0x03;
const TAG_COMMIT: u8 = 0x10;

/// When the WAL file is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Never `fsync`; the OS page cache decides.  Fastest, survives process
    /// crashes but not power loss.
    None,
    /// `fsync` once per committed barrier batch (the default): every state
    /// the engine could resume from is stable.
    #[default]
    Barrier,
    /// `fsync` after every record.  Slowest; only for paranoia testing.
    Always,
}

/// A persisted link change, kept representation-exact: latencies and
/// bandwidths are stored as `f64` bit patterns so recovery reproduces the
/// topology bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkRecord {
    pub a: u32,
    pub b: u32,
    pub latency_bits: u64,
    pub bandwidth_bits: u64,
    pub cost: i64,
    /// The runtime's `LinkClass`, mapped to a stable small integer by the
    /// caller (the store crate stays independent of the simulator).
    pub class: u8,
}

/// One logical operation in the log.
#[derive(Debug, Clone)]
pub enum WalOp {
    /// An `insert_shared` / `delete` intent against the table
    /// `(node, tuple.relation)`.
    Tuple {
        node: u32,
        insert: bool,
        tuple: Arc<Tuple>,
    },
    /// A topology link addition or removal.
    Link { add: bool, link: LinkRecord },
    /// Aggregate-provenance bookkeeping: the engine tracks, per
    /// `(node, relation, group key)`, which `prov`/`ruleExec` pair is
    /// currently installed so it can retract them when the group's output
    /// changes.  The map is not derivable from the tables alone, so its
    /// mutations are journaled.  `tuples` is present exactly when
    /// `install` is true.
    AggProv {
        install: bool,
        node: u32,
        relation: RelId,
        group: Vec<Value>,
        tuples: Option<(Arc<Tuple>, Arc<Tuple>)>,
    },
}

/// A committed barrier batch read back from the log.
#[derive(Debug)]
pub struct WalBatch {
    pub seq: u64,
    pub time_bits: u64,
    pub ops: Vec<WalOp>,
}

fn encode_op(op: &WalOp, out: &mut Vec<u8>) {
    match op {
        WalOp::Tuple {
            node,
            insert,
            tuple,
        } => {
            out.push(TAG_TUPLE);
            out.push(u8::from(*insert));
            out.extend_from_slice(&node.to_be_bytes());
            codec::encode_tuple(tuple, out);
        }
        WalOp::Link { add, link } => {
            out.push(TAG_LINK);
            out.push(u8::from(*add));
            encode_link(link, out);
        }
        WalOp::AggProv {
            install,
            node,
            relation,
            group,
            tuples,
        } => {
            out.push(TAG_AGG_PROV);
            out.push(u8::from(*install));
            out.extend_from_slice(&node.to_be_bytes());
            exspan_types::value::encode_str_for_hash(relation.as_str(), out);
            out.extend_from_slice(&(group.len() as u32).to_be_bytes());
            for v in group {
                codec::encode_value(v, out);
            }
            if let Some((prov, exec)) = tuples {
                codec::encode_tuple(prov, out);
                codec::encode_tuple(exec, out);
            }
        }
    }
}

pub(crate) fn encode_link(link: &LinkRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&link.a.to_be_bytes());
    out.extend_from_slice(&link.b.to_be_bytes());
    out.extend_from_slice(&link.latency_bits.to_be_bytes());
    out.extend_from_slice(&link.bandwidth_bits.to_be_bytes());
    out.extend_from_slice(&link.cost.to_be_bytes());
    out.push(link.class);
}

pub(crate) fn decode_link(r: &mut Reader<'_>) -> Result<LinkRecord, CodecError> {
    Ok(LinkRecord {
        a: r.u32()?,
        b: r.u32()?,
        latency_bits: r.u64()?,
        bandwidth_bits: r.u64()?,
        cost: r.i64()?,
        class: r.u8()?,
    })
}

enum Record {
    Op(WalOp),
    Commit { seq: u64, time_bits: u64 },
}

fn decode_record(payload: &[u8]) -> Result<Record, CodecError> {
    let mut r = Reader::new(payload);
    let record = match r.u8()? {
        TAG_TUPLE => {
            let insert = r.u8()? != 0;
            let node = r.u32()?;
            let tuple = Arc::new(codec::decode_tuple(&mut r)?);
            Record::Op(WalOp::Tuple {
                node,
                insert,
                tuple,
            })
        }
        TAG_LINK => {
            let add = r.u8()? != 0;
            let link = decode_link(&mut r)?;
            Record::Op(WalOp::Link { add, link })
        }
        TAG_AGG_PROV => {
            let install = r.u8()? != 0;
            let node = r.u32()?;
            let relation = RelId::intern(r.string()?);
            let count = r.u32()? as usize;
            if count > r.remaining() {
                return Err(CodecError::Truncated);
            }
            let mut group = Vec::with_capacity(count);
            for _ in 0..count {
                group.push(codec::decode_value(&mut r)?);
            }
            let tuples = if install {
                let prov = Arc::new(codec::decode_tuple(&mut r)?);
                let exec = Arc::new(codec::decode_tuple(&mut r)?);
                Some((prov, exec))
            } else {
                None
            };
            Record::Op(WalOp::AggProv {
                install,
                node,
                relation,
                group,
                tuples,
            })
        }
        TAG_COMMIT => Record::Commit {
            seq: r.u64()?,
            time_bits: r.u64()?,
        },
        tag => return Err(CodecError::BadTag(tag)),
    };
    if !r.is_empty() {
        // A valid record consumes its whole payload; trailing garbage means
        // the frame length lied, i.e. corruption.
        return Err(CodecError::Truncated);
    }
    Ok(record)
}

fn frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Appends committed batches to the log file.
pub struct WalWriter {
    file: File,
    durability: Durability,
    /// Bytes in the file (all of them committed/framed).
    pub len: u64,
}

impl WalWriter {
    /// Opens (creating if absent) the log at `path`, truncating it to
    /// `valid_len` — the committed prefix a prior [`read_wal`] validated —
    /// so a torn tail from a crashed write is physically discarded.
    pub fn open(path: &Path, valid_len: u64, durability: Durability) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            durability,
            len: valid_len,
        })
    }

    /// Appends `ops` as one batch closed by a commit record carrying
    /// `(seq, time_bits)`, honoring the durability policy.  Returns the
    /// number of bytes appended.
    pub fn append_batch(&mut self, ops: &[WalOp], seq: u64, time_bits: u64) -> io::Result<u64> {
        let mut frames = Vec::new();
        let mut payload = Vec::new();
        for op in ops {
            payload.clear();
            encode_op(op, &mut payload);
            frame(&payload, &mut frames);
            if self.durability == Durability::Always {
                self.file.write_all(&frames)?;
                self.file.sync_data()?;
                self.len += frames.len() as u64;
                frames.clear();
            }
        }
        payload.clear();
        payload.push(TAG_COMMIT);
        payload.extend_from_slice(&seq.to_be_bytes());
        payload.extend_from_slice(&time_bits.to_be_bytes());
        frame(&payload, &mut frames);
        self.file.write_all(&frames)?;
        self.len += frames.len() as u64;
        match self.durability {
            Durability::None => {}
            Durability::Barrier | Durability::Always => self.file.sync_data()?,
        }
        Ok(self.len)
    }

    /// Truncates the log to empty (after a snapshot established a new
    /// watermark that supersedes every logged batch).
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.len = 0;
        if self.durability != Durability::None {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

/// Reads every *committed* batch from the log, stopping cleanly at the
/// first torn or invalid record.  Returns the batches and the byte length
/// of the valid committed prefix (pass it to [`WalWriter::open`]).
///
/// Never panics on corrupt input: a short frame, checksum mismatch,
/// undecodable payload, or a trailing run of operations with no commit
/// record are all treated as the crash tail and dropped.
pub fn read_wal(path: &Path) -> io::Result<(Vec<WalBatch>, u64)> {
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut batches = Vec::new();
    let mut pending: Vec<WalOp> = Vec::new();
    let mut pos = 0usize;
    let mut valid = 0u64;
    while data.len() - pos >= 8 {
        let len =
            u32::from_be_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]) as usize;
        let crc = u32::from_be_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
        let body_start = pos + 8;
        let Some(body_end) = body_start.checked_add(len).filter(|&e| e <= data.len()) else {
            break;
        };
        let payload = &data[body_start..body_end];
        if crc32(payload) != crc {
            break;
        }
        match decode_record(payload) {
            Ok(Record::Op(op)) => pending.push(op),
            Ok(Record::Commit { seq, time_bits }) => {
                batches.push(WalBatch {
                    seq,
                    time_bits,
                    ops: std::mem::take(&mut pending),
                });
                valid = body_end as u64;
            }
            Err(_) => break,
        }
        pos = body_end;
    }
    Ok((batches, valid))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("exspan-store-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn tuple_op(node: u32, insert: bool, cost: i64) -> WalOp {
        WalOp::Tuple {
            node,
            insert,
            tuple: Arc::new(Tuple::new(
                "pathCost",
                node,
                vec![Value::Node(node + 1), Value::Int(cost)],
            )),
        }
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            tuple_op(1, true, 10),
            tuple_op(2, false, 7),
            WalOp::Link {
                add: true,
                link: LinkRecord {
                    a: 1,
                    b: 2,
                    latency_bits: 0.05f64.to_bits(),
                    bandwidth_bits: 1e6f64.to_bits(),
                    cost: 3,
                    class: 1,
                },
            },
            WalOp::AggProv {
                install: true,
                node: 4,
                relation: RelId::intern("bestPathCost"),
                group: vec![Value::Node(4), Value::Node(9)],
                tuples: Some((
                    Arc::new(Tuple::new(
                        "prov",
                        4,
                        vec![
                            Value::Digest([1; 20]),
                            Value::Digest([2; 20]),
                            Value::Node(4),
                        ],
                    )),
                    Arc::new(Tuple::new(
                        "ruleExec",
                        4,
                        vec![
                            Value::Digest([2; 20]),
                            Value::from("sp3"),
                            Value::list(vec![]),
                        ],
                    )),
                )),
            },
            WalOp::AggProv {
                install: false,
                node: 4,
                relation: RelId::intern("bestPathCost"),
                group: vec![Value::Node(4), Value::Node(9)],
                tuples: None,
            },
        ]
    }

    fn assert_ops_equal(a: &[WalOp], b: &[WalOp]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            match (x, y) {
                (
                    WalOp::Tuple {
                        node: n1,
                        insert: i1,
                        tuple: t1,
                    },
                    WalOp::Tuple {
                        node: n2,
                        insert: i2,
                        tuple: t2,
                    },
                ) => {
                    assert_eq!((n1, i1, &**t1), (n2, i2, &**t2));
                }
                (WalOp::Link { add: a1, link: l1 }, WalOp::Link { add: a2, link: l2 }) => {
                    assert_eq!((a1, l1), (a2, l2));
                }
                (
                    WalOp::AggProv {
                        install: i1,
                        node: n1,
                        relation: r1,
                        group: g1,
                        tuples: t1,
                    },
                    WalOp::AggProv {
                        install: i2,
                        node: n2,
                        relation: r2,
                        group: g2,
                        tuples: t2,
                    },
                ) => {
                    assert_eq!((i1, n1, r1, g1), (i2, n2, r2, g2));
                    match (t1, t2) {
                        (None, None) => {}
                        (Some((p1, e1)), Some((p2, e2))) => {
                            assert_eq!(&**p1, &**p2);
                            assert_eq!(&**e1, &**e2);
                        }
                        _ => panic!("agg tuple presence mismatch"),
                    }
                }
                _ => panic!("op kind mismatch"),
            }
        }
    }

    #[test]
    fn batches_roundtrip() {
        let path = tmp("roundtrip");
        let ops = sample_ops();
        {
            let mut w = WalWriter::open(&path, 0, Durability::Barrier).unwrap();
            w.append_batch(&ops[..2], 1, 0.5f64.to_bits()).unwrap();
            w.append_batch(&ops[2..], 2, 1.5f64.to_bits()).unwrap();
        }
        let (batches, valid) = read_wal(&path).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(valid, std::fs::metadata(&path).unwrap().len());
        assert_eq!(batches[0].seq, 1);
        assert_eq!(batches[1].time_bits, 1.5f64.to_bits());
        assert_ops_equal(&batches[0].ops, &ops[..2]);
        assert_ops_equal(&batches[1].ops, &ops[2..]);
    }

    #[test]
    fn torn_tail_stops_cleanly_at_every_cut() {
        let path = tmp("torn");
        {
            let mut w = WalWriter::open(&path, 0, Durability::None).unwrap();
            w.append_batch(&sample_ops()[..2], 1, 1.0f64.to_bits())
                .unwrap();
            w.append_batch(&sample_ops()[2..], 2, 2.0f64.to_bits())
                .unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let (all, first_batch_end) = {
            let (batches, _) = read_wal(&path).unwrap();
            assert_eq!(batches.len(), 2);
            // Find the end of batch 1 by re-reading progressively.
            let mut end = 0;
            for cut in 0..=full.len() {
                std::fs::write(&path, &full[..cut]).unwrap();
                let (b, v) = read_wal(&path).unwrap();
                if b.len() == 1 && end == 0 {
                    end = v;
                }
            }
            (batches, end)
        };
        assert_eq!(all.len(), 2);
        assert!(first_batch_end > 0);
        // Every prefix cut yields only fully-committed batches and a valid
        // watermark that never exceeds the cut.
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (batches, valid) = read_wal(&path).unwrap();
            assert!(valid <= cut as u64);
            assert!(batches.len() <= 2);
            for b in &batches {
                assert!(b.seq == 1 || b.seq == 2);
            }
            if (cut as u64) < first_batch_end {
                assert!(batches.is_empty(), "cut {cut} yielded a partial batch");
            }
        }
    }

    #[test]
    fn garbage_tail_and_bitflips_are_ignored() {
        let path = tmp("garbage");
        {
            let mut w = WalWriter::open(&path, 0, Durability::Barrier).unwrap();
            w.append_batch(&sample_ops(), 7, 3.0f64.to_bits()).unwrap();
        }
        let clean = std::fs::read(&path).unwrap();
        // Appended garbage is skipped.
        let mut dirty = clean.clone();
        dirty.extend_from_slice(&[0xFF; 37]);
        std::fs::write(&path, &dirty).unwrap();
        let (batches, valid) = read_wal(&path).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(valid, clean.len() as u64);
        // A bit flip inside the committed region invalidates everything from
        // that record on (checksum catches it) without panicking.
        let mut flipped = clean.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let (batches, _) = read_wal(&path).unwrap();
        assert!(batches.is_empty());
    }

    #[test]
    fn reopen_truncates_to_committed_prefix() {
        let path = tmp("reopen");
        {
            let mut w = WalWriter::open(&path, 0, Durability::Barrier).unwrap();
            w.append_batch(&sample_ops()[..1], 1, 1.0f64.to_bits())
                .unwrap();
        }
        // Simulate a crash mid-append: garbage after the committed batch.
        let mut data = std::fs::read(&path).unwrap();
        let committed = data.len() as u64;
        data.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        std::fs::write(&path, &data).unwrap();
        let (batches, valid) = read_wal(&path).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(valid, committed);
        {
            let mut w = WalWriter::open(&path, valid, Durability::Barrier).unwrap();
            w.append_batch(&sample_ops()[1..2], 2, 2.0f64.to_bits())
                .unwrap();
        }
        let (batches, _) = read_wal(&path).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1].seq, 2);
    }

    #[test]
    fn empty_and_missing_files_read_as_empty() {
        let path = tmp("empty");
        let (batches, valid) = read_wal(&path).unwrap();
        assert!(batches.is_empty());
        assert_eq!(valid, 0);
        std::fs::write(&path, b"").unwrap();
        let (batches, valid) = read_wal(&path).unwrap();
        assert!(batches.is_empty());
        assert_eq!(valid, 0);
    }
}
