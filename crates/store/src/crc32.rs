//! CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib variant) over byte
//! slices.  Every WAL record and every snapshot file carries one of these
//! checksums; recovery treats a mismatch as the torn tail of a crashed
//! write and stops replaying there.
//!
//! Hand-rolled (table-driven, reflected polynomial `0xEDB8_8320`) because
//! the build environment is offline and the workspace vendors no checksum
//! crate.  The constants are the standard ones, so the on-disk format is
//! checkable with any external CRC-32 tool.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // The canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"exspan-store");
        let mut corrupted = b"exspan-store".to_vec();
        corrupted[3] ^= 0x01;
        assert_ne!(base, crc32(&corrupted));
    }
}
