//! Canonical snapshots and per-table spill files.
//!
//! # Snapshot format (`snapshot.bin`)
//!
//! ```text
//! magic "XSPNSNAP" | version u32 | seq u64 | time bits u64 | node_count u32
//! link_count u32   | links: (a u32, b u32, latency u64, bandwidth u64,
//!                            cost i64, class u8)*
//! table_count u32  | tables: (node u32, relation str, row_count u64,
//!                             rows: (count u64, tuple)*)*
//! agg_count u32    | entries: (node u32, relation str, group values,
//!                              prov tuple, exec tuple)*
//! crc32 of everything above: u32
//! ```
//!
//! All integers are big-endian.  The writer emits tables sorted by
//! `(node, relation name)` and rows in primary-key (`scan()`) order, and the
//! engine hands it link/aggregate sections in canonical sort order too — so
//! snapshot bytes are a pure function of logical state, independent of shard
//! count or execution interleaving.  That is what lets tests assert that a
//! 1-shard and a 4-shard run of the same workload write *identical* snapshot
//! files, and lets a state digest be defined as the SHA-1 of the encoded
//! snapshot body.
//!
//! Snapshots are written to a temporary file, fsynced, and atomically
//! renamed into place; the WAL is truncated only after the rename succeeds,
//! so a crash at any point leaves either the old snapshot + full log or the
//! new snapshot (+ a log whose stale prefix recovery filters by `seq`).
//!
//! # Spill files (`spill/n<node>_<relation>.tbl`)
//!
//! One table section (same encoding as a snapshot table entry) behind the
//! magic `"XSPNSPIL"`, with the same trailing CRC.  A spilled table is
//! byte-faithful: faulting it back in rebuilds exactly the rows (and
//! duplicate counts) that were evicted.

use crate::codec::{self, Reader};
use crate::crc32::crc32;
use crate::wal::{decode_link, encode_link, LinkRecord};
use crate::StoreError;
use exspan_types::symbol::RelId;
use exspan_types::tuple::Tuple;
use exspan_types::value::{encode_str_for_hash, Value};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

const SNAPSHOT_MAGIC: &[u8; 8] = b"XSPNSNAP";
const SPILL_MAGIC: &[u8; 8] = b"XSPNSPIL";
const VERSION: u32 = 1;

/// The full contents of one `(node, relation)` table: rows with their
/// duplicate counts, in primary-key order.
#[derive(Debug, Clone)]
pub struct TableDump {
    pub node: u32,
    pub relation: RelId,
    pub rows: Vec<(Arc<Tuple>, u64)>,
}

/// One installed aggregate-provenance entry (see
/// [`crate::WalOp::AggProv`]).
#[derive(Debug, Clone)]
pub struct AggProvEntry {
    pub node: u32,
    pub relation: RelId,
    pub group: Vec<Value>,
    pub prov: Arc<Tuple>,
    pub exec: Arc<Tuple>,
}

/// Everything a snapshot persists: the commit watermark, the link set, all
/// tables, and the aggregate-provenance map.
#[derive(Debug)]
pub struct SnapshotData {
    pub seq: u64,
    pub time_bits: u64,
    pub node_count: u32,
    pub links: Vec<LinkRecord>,
    pub tables: Vec<TableDump>,
    pub agg: Vec<AggProvEntry>,
}

fn encode_table(dump: &TableDump, out: &mut Vec<u8>) {
    out.extend_from_slice(&dump.node.to_be_bytes());
    encode_str_for_hash(dump.relation.as_str(), out);
    out.extend_from_slice(&(dump.rows.len() as u64).to_be_bytes());
    for (tuple, count) in &dump.rows {
        out.extend_from_slice(&count.to_be_bytes());
        codec::encode_tuple(tuple, out);
    }
}

fn decode_table(r: &mut Reader<'_>) -> Result<TableDump, StoreError> {
    let node = r.u32()?;
    let relation = RelId::intern(r.string()?);
    let row_count = r.u64()? as usize;
    let mut rows = Vec::new();
    for _ in 0..row_count {
        let count = r.u64()?;
        let tuple = Arc::new(codec::decode_tuple(r)?);
        rows.push((tuple, count));
    }
    Ok(TableDump {
        node,
        relation,
        rows,
    })
}

/// Encodes the snapshot *body* (everything but the trailing CRC) into
/// `out`.  Exposed so the engine can define its state digest as a hash of
/// exactly the bytes that would be persisted.
pub fn encode_snapshot(snap: &SnapshotData, out: &mut Vec<u8>) {
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.extend_from_slice(&snap.seq.to_be_bytes());
    out.extend_from_slice(&snap.time_bits.to_be_bytes());
    out.extend_from_slice(&snap.node_count.to_be_bytes());
    out.extend_from_slice(&(snap.links.len() as u32).to_be_bytes());
    for link in &snap.links {
        encode_link(link, out);
    }
    out.extend_from_slice(&(snap.tables.len() as u32).to_be_bytes());
    for table in &snap.tables {
        encode_table(table, out);
    }
    out.extend_from_slice(&(snap.agg.len() as u32).to_be_bytes());
    for entry in &snap.agg {
        out.extend_from_slice(&entry.node.to_be_bytes());
        encode_str_for_hash(entry.relation.as_str(), out);
        out.extend_from_slice(&(entry.group.len() as u32).to_be_bytes());
        for v in &entry.group {
            codec::encode_value(v, out);
        }
        codec::encode_tuple(&entry.prov, out);
        codec::encode_tuple(&entry.exec, out);
    }
}

fn decode_snapshot(data: &[u8]) -> Result<SnapshotData, StoreError> {
    if data.len() < 4 {
        return Err(StoreError::Corrupt("snapshot shorter than its CRC".into()));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_be_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(body) != stored {
        return Err(StoreError::Corrupt("snapshot checksum mismatch".into()));
    }
    let mut r = Reader::new(body);
    if r.bytes(8)? != SNAPSHOT_MAGIC {
        return Err(StoreError::Corrupt("bad snapshot magic".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let seq = r.u64()?;
    let time_bits = r.u64()?;
    let node_count = r.u32()?;
    let link_count = r.u32()? as usize;
    let mut links = Vec::new();
    for _ in 0..link_count {
        links.push(decode_link(&mut r)?);
    }
    let table_count = r.u32()? as usize;
    let mut tables = Vec::new();
    for _ in 0..table_count {
        tables.push(decode_table(&mut r)?);
    }
    let agg_count = r.u32()? as usize;
    let mut agg = Vec::new();
    for _ in 0..agg_count {
        let node = r.u32()?;
        let relation = RelId::intern(r.string()?);
        let count = r.u32()? as usize;
        let mut group = Vec::with_capacity(count.min(r.remaining()));
        for _ in 0..count {
            group.push(codec::decode_value(&mut r)?);
        }
        let prov = Arc::new(codec::decode_tuple(&mut r)?);
        let exec = Arc::new(codec::decode_tuple(&mut r)?);
        agg.push(AggProvEntry {
            node,
            relation,
            group,
            prov,
            exec,
        });
    }
    if !r.is_empty() {
        return Err(StoreError::Corrupt("trailing bytes in snapshot".into()));
    }
    Ok(SnapshotData {
        seq,
        time_bits,
        node_count,
        links,
        tables,
        agg,
    })
}

fn write_checksummed(path: &Path, body: Vec<u8>) -> std::io::Result<()> {
    let mut bytes = body;
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_be_bytes());
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Writes the snapshot atomically (temp file + fsync + rename).
pub fn write_snapshot(path: &Path, snap: &SnapshotData) -> std::io::Result<()> {
    let mut body = Vec::new();
    encode_snapshot(snap, &mut body);
    write_checksummed(path, body)
}

/// Loads and validates a snapshot.
pub fn load_snapshot(path: &Path) -> Result<SnapshotData, StoreError> {
    decode_snapshot(&std::fs::read(path)?)
}

/// Writes one evicted table as a spill file (atomic, checksummed).
pub fn write_spill(path: &Path, dump: &TableDump) -> std::io::Result<()> {
    let mut body = Vec::new();
    body.extend_from_slice(SPILL_MAGIC);
    body.extend_from_slice(&VERSION.to_be_bytes());
    encode_table(dump, &mut body);
    write_checksummed(path, body)
}

/// Loads a spill file back into a [`TableDump`].
pub fn load_spill(path: &Path) -> Result<TableDump, StoreError> {
    let data = std::fs::read(path)?;
    if data.len() < 4 {
        return Err(StoreError::Corrupt(
            "spill file shorter than its CRC".into(),
        ));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_be_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(body) != stored {
        return Err(StoreError::Corrupt("spill checksum mismatch".into()));
    }
    let mut r = Reader::new(body);
    if r.bytes(8)? != SPILL_MAGIC {
        return Err(StoreError::Corrupt("bad spill magic".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported spill version {version}"
        )));
    }
    let dump = decode_table(&mut r)?;
    if !r.is_empty() {
        return Err(StoreError::Corrupt("trailing bytes in spill file".into()));
    }
    Ok(dump)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("exspan-store-snap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> SnapshotData {
        SnapshotData {
            seq: 42,
            time_bits: 12.5f64.to_bits(),
            node_count: 5,
            links: vec![LinkRecord {
                a: 0,
                b: 1,
                latency_bits: 0.01f64.to_bits(),
                bandwidth_bits: 1e7f64.to_bits(),
                cost: 2,
                class: 0,
            }],
            tables: vec![
                TableDump {
                    node: 0,
                    relation: RelId::intern("bestPathCost"),
                    rows: vec![
                        (
                            Arc::new(Tuple::new(
                                "bestPathCost",
                                0,
                                vec![Value::Node(1), Value::Int(2)],
                            )),
                            1,
                        ),
                        (
                            Arc::new(Tuple::new(
                                "bestPathCost",
                                0,
                                vec![Value::Node(2), Value::Int(4)],
                            )),
                            3,
                        ),
                    ],
                },
                TableDump {
                    node: 3,
                    relation: RelId::intern("link"),
                    rows: vec![],
                },
            ],
            agg: vec![AggProvEntry {
                node: 0,
                relation: RelId::intern("bestPathCost"),
                group: vec![Value::Node(0), Value::Node(1)],
                prov: Arc::new(Tuple::new(
                    "prov",
                    0,
                    vec![
                        Value::Digest([3; 20]),
                        Value::Digest([4; 20]),
                        Value::Node(0),
                    ],
                )),
                exec: Arc::new(Tuple::new(
                    "ruleExec",
                    0,
                    vec![
                        Value::Digest([4; 20]),
                        Value::from("sp3"),
                        Value::list(vec![Value::Digest([5; 20])]),
                    ],
                )),
            }],
        }
    }

    fn assert_same(a: &SnapshotData, b: &SnapshotData) {
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        encode_snapshot(a, &mut ea);
        encode_snapshot(b, &mut eb);
        assert_eq!(ea, eb);
    }

    #[test]
    fn snapshot_roundtrips() {
        let dir = tmp("roundtrip");
        let path = dir.join("snapshot.bin");
        let snap = sample();
        write_snapshot(&path, &snap).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.seq, 42);
        assert_eq!(back.time_bits, 12.5f64.to_bits());
        assert_eq!(back.node_count, 5);
        assert_same(&snap, &back);
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let (mut a, mut b) = (Vec::new(), Vec::new());
        encode_snapshot(&sample(), &mut a);
        encode_snapshot(&sample(), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_a_panic() {
        let dir = tmp("corrupt");
        let path = dir.join("snapshot.bin");
        write_snapshot(&path, &sample()).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        for i in [0usize, 9, data.len() / 2, data.len() - 1] {
            let mut flipped = data.clone();
            flipped[i] ^= 0x10;
            std::fs::write(&path, &flipped).unwrap();
            assert!(load_snapshot(&path).is_err(), "flip at {i} not caught");
        }
        // Truncation at every length is caught by the CRC.
        data.truncate(data.len() - 7);
        std::fs::write(&path, &data).unwrap();
        assert!(load_snapshot(&path).is_err());
    }

    #[test]
    fn spill_roundtrips() {
        let dir = tmp("spill");
        let path = dir.join("n0_bestPathCost.tbl");
        let dump = sample().tables.remove(0);
        write_spill(&path, &dump).unwrap();
        let back = load_spill(&path).unwrap();
        assert_eq!(back.node, dump.node);
        assert_eq!(back.relation, dump.relation);
        assert_eq!(back.rows.len(), dump.rows.len());
        for ((t1, c1), (t2, c2)) in back.rows.iter().zip(&dump.rows) {
            assert_eq!((&**t1, c1), (&**t2, c2));
        }
        // A spill file is never mistaken for a snapshot.
        assert!(load_snapshot(&path).is_err());
    }
}
