//! # `exspan-store` — log-structured persistence for ExSPAN deployments
//!
//! Every engine table is an in-memory `BTreeMap`; this crate gives a
//! deployment a durable second copy of that state behind the narrow
//! [`StorageBackend`] seam, without the engine growing any knowledge of
//! file formats.  Three mechanisms compose:
//!
//! 1. **Append-only WAL** ([`wal`]).  During a run the engine journals
//!    every logical table operation (insert/delete intents, topology link
//!    changes, aggregate-provenance bookkeeping) and appends them once per
//!    barrier window as a checksummed, length-prefixed batch closed by a
//!    commit record.  The [`Durability`] knob controls fsync cadence:
//!    `None` (OS decides), `Barrier` (default: one fsync per committed
//!    window), or `Always` (per record).
//! 2. **Canonical snapshots** ([`snapshot`]).  Once enough log accumulates
//!    (`StoreConfig::snapshot_wal_bytes`), the engine hands the backend a
//!    full dump — tables in `(node, relation)` order with rows in `scan()`
//!    order, the link set, and the aggregate-provenance map, all sorted
//!    canonically — so snapshot bytes are a pure function of logical state:
//!    a 1-shard and a 4-shard run of the same workload write *identical*
//!    files.  Snapshots are written to a temp file and atomically renamed;
//!    the WAL is truncated only after the rename.
//! 3. **Cold-table spill** ([`snapshot::write_spill`]).  With a row budget
//!    configured, the largest tables are evicted to their snapshot form
//!    when the budget is exceeded and transparently faulted back in when
//!    the engine next evaluates at their node.  Spill files are an
//!    in-process cache: stale ones are deleted on open, because the
//!    snapshot + WAL are always the authoritative copy.
//!
//! ## Recovery invariants
//!
//! Opening a data directory ([`DiskBackend::open`]) loads the latest valid
//! snapshot, replays committed WAL batches newer than the snapshot's
//! watermark (the `seq` filter makes replay idempotent when a crash landed
//! between snapshot rename and log truncation), and stops cleanly at the
//! first torn or invalid record — a short frame, checksum mismatch,
//! undecodable payload, or trailing operations without a commit are all
//! treated as the crash tail, never a panic.  Because the journal records
//! logical intents and replay drives them through the identical table
//! code, the recovered tables are **byte-identical** to the state at the
//! last committed barrier: same rows, same duplicate counts, same keyed-
//! replacement outcomes, same secondary indexes.
//!
//! What recovery restores is the state as of the last committed barrier —
//! a quiescent point when commits happen at fixpoints.  In-flight
//! simulator events and traffic statistics are transient by design and are
//! not part of the durable state.
//!
//! ## On-disk layout
//!
//! ```text
//! <data_dir>/wal.log       committed delta batches (framed, CRC-32)
//! <data_dir>/snapshot.bin  latest canonical snapshot (atomic rename)
//! <data_dir>/spill/        evicted cold tables (cleared on open)
//! ```
//!
//! This crate depends only on `exspan-types`: the value/tuple codec
//! ([`codec`]) *reuses the canonical hash encoding* those types already
//! define (the bytes that name a tuple in a provenance VID are the bytes
//! that persist it), adding only the decoder.

pub mod backend;
pub mod codec;
pub mod crc32;
pub mod snapshot;
pub mod wal;

pub use backend::{
    DiskBackend, MemoryBackend, RecoveredState, StorageBackend, StorageStats, StoreConfig,
};
pub use codec::CodecError;
pub use snapshot::{AggProvEntry, SnapshotData, TableDump};
pub use wal::{Durability, LinkRecord, WalBatch, WalOp};

/// A storage failure: I/O, codec, or a corruption the checksums caught.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    Codec(CodecError),
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "storage codec error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "storage corruption: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}
