//! Property tests for the persistence codec and the WAL framing.
//!
//! * Arbitrary `Value`/`Tuple` shapes (including nested lists, digests,
//!   empty strings, extreme integers) survive an encode/decode round trip
//!   bit-for-bit, and keep their provenance VID.
//! * Arbitrary committed WAL batches survive a write/read round trip.
//! * Cutting the log at *any* byte offset — the torn-tail corpus — never
//!   panics and never yields anything beyond the committed prefix.

use exspan_store::codec::{decode_tuple, decode_value, encode_tuple, encode_value, Reader};
use exspan_store::wal::{read_wal, Durability, WalOp, WalWriter};
use exspan_types::tuple::Tuple;
use exspan_types::value::Value;
use proptest::collection;
use proptest::prelude::*;
use std::sync::Arc;

/// Maps arbitrary bytes onto a symbol-safe alphabet (including multibyte
/// UTF-8) so string round trips exercise interning with non-ASCII content.
fn symbol_from(bytes: Vec<u8>) -> String {
    const ALPHABET: [&str; 12] = ["a", "B", "0", "_", "-", ".", "$", " ", "é", "λ", "→", "中"];
    bytes
        .into_iter()
        .map(|b| ALPHABET[b as usize % ALPHABET.len()])
        .collect()
}

fn value_strategy() -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        any::<u32>().prop_map(Value::Node),
        any::<i64>().prop_map(Value::Int),
        collection::vec(any::<u8>(), 0..12).prop_map(|b| Value::from(symbol_from(b).as_str())),
        any::<bool>().prop_map(Value::Bool),
        (any::<u64>(), any::<u64>()).prop_map(|(hi, lo)| {
            let mut d = [0u8; 20];
            d[..8].copy_from_slice(&hi.to_be_bytes());
            d[8..16].copy_from_slice(&lo.to_be_bytes());
            Value::Digest(d)
        }),
        any::<u32>().prop_map(Value::Payload),
    ]
    .boxed();
    leaf.prop_recursive(3, 24, 4, |inner| {
        collection::vec(inner, 0..4).prop_map(Value::list)
    })
}

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    (
        collection::vec(any::<u8>(), 1..10),
        any::<u32>(),
        collection::vec(value_strategy(), 0..5),
    )
        .prop_map(|(rel, location, values)| Tuple::new(symbol_from(rel).as_str(), location, values))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_roundtrips_exactly(v in value_strategy()) {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_value(&mut r).expect("decode");
        prop_assert_eq!(&back, &v);
        prop_assert!(r.is_empty());
        // Re-encoding is byte-stable (canonical form).
        let mut buf2 = Vec::new();
        encode_value(&back, &mut buf2);
        prop_assert_eq!(buf, buf2);
    }

    #[test]
    fn tuple_roundtrips_exactly(t in tuple_strategy()) {
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_tuple(&mut r).expect("decode");
        prop_assert_eq!(&back, &t);
        prop_assert!(r.is_empty());
        // Persistence preserves provenance identity.
        prop_assert_eq!(back.vid(), t.vid());
    }

    #[test]
    fn truncated_tuples_error_cleanly(t in tuple_strategy(), frac in 0u32..1000) {
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let cut = (buf.len() * frac as usize) / 1000;
        if cut < buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            prop_assert!(decode_tuple(&mut r).is_err());
        }
    }
}

fn wal_path(name: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "exspan-store-proptest-{}-{name}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("wal.log")
}

fn batch_strategy() -> impl Strategy<Value = Vec<Vec<WalOp>>> {
    let op = (any::<u32>(), any::<bool>(), tuple_strategy()).prop_map(|(node, insert, tuple)| {
        WalOp::Tuple {
            node,
            insert,
            tuple: Arc::new(tuple),
        }
    });
    collection::vec(collection::vec(op, 0..5), 1..5)
}

fn assert_tuple_ops_equal(a: &[WalOp], b: &[WalOp]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        let (
            WalOp::Tuple {
                node: n1,
                insert: i1,
                tuple: t1,
            },
            WalOp::Tuple {
                node: n2,
                insert: i2,
                tuple: t2,
            },
        ) = (x, y)
        else {
            panic!("non-tuple op in tuple-only corpus");
        };
        assert_eq!((n1, i1, &**t1), (n2, i2, &**t2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wal_batches_roundtrip(batches in batch_strategy(), case: u64) {
        let path = wal_path("roundtrip", case);
        {
            let mut w = WalWriter::open(&path, 0, Durability::None).unwrap();
            for (i, ops) in batches.iter().enumerate() {
                w.append_batch(ops, i as u64 + 1, (i as f64).to_bits()).unwrap();
            }
        }
        let (back, valid) = read_wal(&path).unwrap();
        prop_assert_eq!(valid, std::fs::metadata(&path).unwrap().len());
        prop_assert_eq!(back.len(), batches.len());
        for (i, b) in back.iter().enumerate() {
            prop_assert_eq!(b.seq, i as u64 + 1);
            assert_tuple_ops_equal(&b.ops, &batches[i]);
        }
    }

    #[test]
    fn torn_tails_never_panic_and_never_invent_state(
        batches in batch_strategy(),
        frac in 0u32..1000,
        case: u64,
    ) {
        let path = wal_path("torn", case);
        {
            let mut w = WalWriter::open(&path, 0, Durability::None).unwrap();
            for (i, ops) in batches.iter().enumerate() {
                w.append_batch(ops, i as u64 + 1, (i as f64).to_bits()).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        let cut = (full.len() * frac as usize) / 1000;
        std::fs::write(&path, &full[..cut]).unwrap();
        let (back, valid) = read_wal(&path).unwrap();
        prop_assert!(valid <= cut as u64);
        prop_assert!(back.len() <= batches.len());
        // Whatever survived is an exact prefix of what was committed.
        for (i, b) in back.iter().enumerate() {
            prop_assert_eq!(b.seq, i as u64 + 1);
            assert_tuple_ops_equal(&b.ops, &batches[i]);
        }
    }
}
