//! Regression: the interned/`Arc`-shared runtime reproduces the committed
//! figure baselines bit-for-bit, at 1 and 4 shards.
//!
//! `check_bench --exact` pins this in CI over the full tiny-scale suite; this
//! test pins it in `cargo test` over the fast figures (fig16/fig17 complete
//! in well under a second each at tiny scale even in debug builds), so a
//! representation change that alters any series statistic — wire sizes,
//! event ordering, annotation sizes — fails the ordinary test run without
//! waiting for the bench pipeline.

use exspan_bench::{run_figure, BenchReport, Scale};
use std::path::PathBuf;

fn baseline_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks/baseline")
}

fn load_baseline(figure: &str) -> BenchReport {
    let path = baseline_dir().join(format!("BENCH_{figure}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

fn assert_matches_baseline(figure: &str, shards: usize) {
    let baseline = load_baseline(figure);
    assert_eq!(baseline.scale, "tiny", "committed baselines are tiny-scale");
    let scale = Scale::tiny().with_shards(shards);
    let report = run_figure(figure, &scale).expect("known figure id");
    let fresh = BenchReport::from_figure(&report, "tiny", shards, 0.0);
    assert_eq!(
        fresh.series.len(),
        baseline.series.len(),
        "{figure} series count changed vs committed baseline"
    );
    for (fs, bs) in fresh.series.iter().zip(&baseline.series) {
        assert_eq!(fs.label, bs.label, "{figure}: series label changed");
        // Bit-exact: the baselines promise identical floating-point
        // statistics, not merely close ones.
        assert_eq!(
            (fs.mean, fs.max, fs.last, fs.points),
            (bs.mean, bs.max, bs.last, bs.points),
            "{figure} [{}] diverged from the committed baseline at {shards} shard(s)",
            fs.label
        );
    }
}

#[test]
fn fig16_matches_committed_baseline_sequential() {
    assert_matches_baseline("fig16", 1);
}

#[test]
fn fig16_matches_committed_baseline_four_shards() {
    assert_matches_baseline("fig16", 4);
}

#[test]
fn fig17_matches_committed_baseline_sequential() {
    assert_matches_baseline("fig17", 1);
}

#[test]
fn fig17_matches_committed_baseline_four_shards() {
    assert_matches_baseline("fig17", 4);
}
