//! Regression test for churn across shard boundaries.
//!
//! A link deleted on shard A whose derivations were shipped to nodes on
//! shard B must retract those derivations across the inbox barrier: the
//! deletion delta cascades through the rules at A's endpoint, the resulting
//! retraction deltas cross the shard boundary carrying their deterministic
//! ordering keys, and shard B applies them in exactly the order the
//! sequential engine would.  This pins the end-to-end behavior (topology
//! mutation + base-tuple deletion + cross-shard cascade) that
//! `crates/bench/tests/churn_alignment.rs` covers for the sequential engine.

use exspan_bench::drive_churn;
use exspan_core::{Deployment, Exspan, ProvenanceMode};
use exspan_ndlog::programs;
use exspan_netsim::{ChurnModel, Topology};
use exspan_types::{Tuple, Value};

const SHARDS: usize = 3;

fn system_with(shards: usize, topology: Topology) -> Deployment {
    let mut system = Exspan::builder()
        .program(programs::mincost())
        .topology(topology)
        .mode(ProvenanceMode::Reference)
        .shards(shards)
        .build()
        .expect("valid deployment");
    system.run_to_fixpoint();
    system
}

/// Finds a link of the topology whose endpoints live on different shards of
/// the engine's partition.
fn cross_shard_link(system: &Deployment) -> (u32, u32) {
    system
        .topology()
        .links()
        .map(|(a, b, _)| (a, b))
        .find(|&(a, b)| system.shard_of(a) != system.shard_of(b))
        .expect("a multi-shard partition of a connected topology must split some link")
}

#[test]
fn cross_shard_link_deletion_retracts_remote_derivations() {
    let mut system = system_with(SHARDS, Topology::testbed_ring(20, 5));
    let (a, b) = cross_shard_link(&system);
    let shard_a = system.shard_of(a);
    let shard_b = system.shard_of(b);
    assert_ne!(shard_a, shard_b);

    // Node b currently routes through (or at least knows) the deleted link:
    // its link table contains link(@b, a, c).
    let link_at_b = Tuple::new(
        "link",
        b,
        vec![
            Value::Node(a),
            Value::Int(system.topology().link(a, b).unwrap().cost),
        ],
    );
    assert_eq!(system.derivation_count(&link_at_b), 1);

    // Delete the link: the base deltas are issued at both endpoints, which
    // live on different shards, and every derivation built from them —
    // wherever it was shipped — must disappear.
    system.remove_link(a, b);
    system.run_to_fixpoint();

    assert_eq!(
        system.derivation_count(&link_at_b),
        0,
        "link base tuple at the far endpoint must be deleted across the shard boundary"
    );
    // The ring minus one edge is still connected: every node keeps a full
    // routing table (n destinations — symmetric links also derive a
    // zero-hop-free route back to the node itself), and no stale route uses
    // the deleted edge at either endpoint (a route a->b or b->a must now
    // cost more than one hop).
    let n = system.topology().num_nodes();
    for node in 0..n as u32 {
        let routes = system.tuples_shared(node, "bestPathCost");
        assert_eq!(
            routes.len(),
            n,
            "node {node} lost routes after cross-shard churn"
        );
    }
    let direct = |s: u32, d: u32| {
        system
            .tuples_shared(s, "bestPathCost")
            .into_iter()
            .find(|t| t.values[0] == Value::Node(d))
            .and_then(|t| t.values[1].as_int().ok())
            .expect("route exists")
    };
    assert!(
        direct(a, b) > 1,
        "a still routes to b over the deleted link"
    );
    assert!(
        direct(b, a) > 1,
        "b still routes to a over the deleted link"
    );

    // And the whole post-churn state matches the sequential oracle.
    let mut oracle = system_with(1, Topology::testbed_ring(20, 5));
    oracle.remove_link(a, b);
    oracle.run_to_fixpoint();
    for rel in ["link", "pathCost", "bestPathCost", "prov", "ruleExec"] {
        assert_eq!(
            oracle.tuples_everywhere_shared(rel),
            system.tuples_everywhere_shared(rel),
            "relation {rel} diverged from the sequential oracle after cross-shard churn"
        );
    }
    assert_eq!(
        oracle.engine().stats().bytes_sent,
        system.engine().stats().bytes_sent,
        "per-node traffic diverged from the sequential oracle"
    );
}

#[test]
fn scheduled_churn_schedule_is_identical_across_shard_counts() {
    // The fig9/fig10 driver path: a churn schedule applied at its scheduled
    // times, with maintenance traffic landing in the right buckets — on both
    // runtimes.
    let run = |shards: usize| {
        let topology = Topology::transit_stub(1, 42);
        let churn = ChurnModel {
            interval: 0.5,
            changes_per_batch: 3,
            seed: 42 ^ 0xC0FFEE,
        };
        let schedule = churn.schedule(&topology, 1.0);
        assert!(!schedule.is_empty());
        let mut system = system_with(shards, topology);
        let start = system.now();
        drive_churn(&mut system, &churn, &schedule, start, 1.0);
        (
            system.tuples_everywhere_shared("bestPathCost"),
            system.avg_bandwidth_mbps(),
            system.total_bytes(),
        )
    };
    let oracle = run(1);
    assert_eq!(
        oracle,
        run(SHARDS),
        "churn-driven run diverged across shard counts"
    );
}
