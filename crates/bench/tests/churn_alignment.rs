//! Regression test for the churn experiments (Figures 9 and 10): churn
//! maintenance traffic must appear *inside* the measurement window.
//!
//! The engine clock only advances while events are processed, so applying
//! churn events "now" right after the initial fixpoint piled all their
//! traffic into the pre-window buckets and produced empty figure series
//! (fig9 regenerated with zero points). Scheduling each event's deltas at
//! `start + event.time` keeps the time-series aligned with the schedule.

use exspan_bench::{drive_churn, run_protocol};
use exspan_core::ProvenanceMode;
use exspan_ndlog::programs;
use exspan_netsim::{ChurnModel, Topology};

#[test]
fn churn_traffic_lands_in_measurement_window() {
    let seed = 42u64;
    let churn_duration = 1.5f64;
    let topology = Topology::transit_stub(1, seed);
    let churn = ChurnModel {
        interval: 0.5,
        changes_per_batch: 6,
        seed: seed ^ 0xC0FFEE,
    };
    let schedule = churn.schedule(&topology, churn_duration);
    assert!(!schedule.is_empty(), "churn model produced no events");

    let mut system = run_protocol(&programs::mincost(), topology, ProvenanceMode::Reference, 1);
    let start = system.now();

    // The same driver churn_experiment (fig9/fig10) uses.
    drive_churn(&mut system, &churn, &schedule, start, churn_duration);

    let in_window: Vec<(f64, f64)> = system
        .avg_bandwidth_mbps()
        .into_iter()
        .filter(|&(time, _)| time >= start && time <= start + churn_duration)
        .collect();
    assert!(
        !in_window.is_empty(),
        "no bandwidth samples inside the churn window [{start}, {}]",
        start + churn_duration
    );
    assert!(
        in_window.iter().any(|&(_, mbps)| mbps > 0.0),
        "churn produced no maintenance traffic inside the window: {in_window:?}"
    );
}
