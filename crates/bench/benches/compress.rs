//! Micro-benchmarks of the provenance compression layer: the dictionary wire
//! codec (`exspan_types::compress`) and the shared BDD node store
//! (`exspan_bdd::SharedBddStore`).
//!
//! Two questions these pin down:
//!
//! * codec throughput — the compressed accounting runs once per message when
//!   `track_compressed` is on, and the serve path compresses every rendered
//!   result chunk, so encode/decode must stay cheap relative to the flat
//!   wire model;
//! * what sharing the node store buys — identical provenance built through
//!   many manager handles should hit the shared apply memo instead of
//!   re-deriving every node per handle.

use criterion::{criterion_group, criterion_main, Criterion};
use exspan_bdd::{Bdd, BddManager, SharedBddStore, VarId};
use exspan_types::compress::{
    compress_bytes, compressed_message_size, decompress_bytes, encode_message,
};
use exspan_types::{Tuple, Value};
use std::hint::black_box;

/// A PATHVECTOR-style tuple: a best-path announcement carrying a node list
/// of length `n` — the redundant payload the dictionary codec targets.
fn path_tuple(n: u32) -> Tuple {
    Tuple::new(
        "bestPath",
        3,
        vec![
            Value::Node(9),
            Value::list((0..n).map(Value::Node).collect()),
            Value::Int(i64::from(n)),
        ],
    )
}

/// A batch of similar path tuples, as a protocol round delivers them: the
/// same relation and overlapping path prefixes over and over.
fn path_batch(count: u32, len: u32) -> Vec<Tuple> {
    (0..count)
        .map(|i| {
            Tuple::new(
                "bestPath",
                i % 16,
                vec![
                    Value::Node(i % 16),
                    Value::list((i % 4..i % 4 + len).map(Value::Node).collect()),
                    Value::Int(i64::from(len)),
                ],
            )
        })
        .collect()
}

fn bench_codec_sizes(c: &mut Criterion) {
    for n in [4u32, 16, 64] {
        let t = path_tuple(n);
        c.bench_function(&format!("compressed_wire_size_path{n}"), |b| {
            b.iter(|| black_box(&t).compressed_wire_size());
        });
    }
    let batch = path_batch(32, 8);
    c.bench_function("compressed_message_size_batch32", |b| {
        b.iter(|| compressed_message_size(black_box(&batch), 24));
    });
}

fn bench_codec_bytes(c: &mut Criterion) {
    // The serve path: a rendered result body, dictionary-compressed per
    // chunk and decompressed by the client.
    let rendered = encode_message(&path_batch(64, 8));
    c.bench_function("compress_bytes_result_body", |b| {
        b.iter(|| compress_bytes(black_box(&rendered)));
    });
    let packed = compress_bytes(&rendered);
    c.bench_function("decompress_bytes_result_body", |b| {
        b.iter(|| decompress_bytes(black_box(&packed)).expect("round trip"));
    });
}

/// Builds a provenance-shaped BDD through `m`: 12 alternative derivations
/// (disjunction), each a conjunction of 6 link variables drawn from a pool
/// of 32 — the same structure every manager handle of a deployment builds
/// for equivalent tuples.
fn path_provenance(m: &mut BddManager, salt: u64) -> Bdd {
    let mut alternatives = Vec::new();
    for d in 0..12u64 {
        let vars: Vec<Bdd> = (0..6u64)
            .map(|i| m.var(((salt + d * 3 + i * 7) % 32) as VarId))
            .collect();
        alternatives.push(m.and_all(vars));
    }
    m.or_all(alternatives)
}

fn bench_bdd_store(c: &mut Criterion) {
    // Eight handles over ONE store: after the first handle populates the
    // apply memo, the remaining seven replay it.
    c.bench_function("bdd_apply_shared_store_8_handles", |b| {
        b.iter(|| {
            let store = SharedBddStore::new();
            let mut acc = 0u64;
            for node in 0..8u64 {
                let mut m = BddManager::with_store(store.clone());
                acc ^= path_provenance(&mut m, node % 2).index();
            }
            acc
        });
    });
    // Eight handles each over their OWN store: every node and memo entry is
    // re-derived eight times — the pre-shared-store behavior.
    c.bench_function("bdd_apply_isolated_store_8_handles", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for node in 0..8u64 {
                let mut m = BddManager::with_store(SharedBddStore::new());
                acc ^= path_provenance(&mut m, node % 2).index();
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_codec_sizes,
    bench_codec_bytes,
    bench_bdd_store
);
criterion_main!(benches);
