//! Micro-benchmarks of the interned hot path: tuple hashing/equality under
//! interned relations, symbol interning and resolution, and the wire-size /
//! hash encodings the figures' byte accounting rests on.
//!
//! These pin the primitives the delta-processing loop leans on after the
//! interning refactor — a regression here shows up as wall-clock loss across
//! every figure, so CI runs them (job `microbench`) and archives the numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use exspan_types::{wire, Symbol, Tuple, Value};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::hint::black_box;

fn sample_tuple() -> Tuple {
    Tuple::new(
        "pathCost",
        17,
        vec![Value::Node(42), Value::Int(12), Value::Node(3)],
    )
}

fn path_tuple() -> Tuple {
    Tuple::new(
        "bestPath",
        3,
        vec![
            Value::Node(9),
            Value::list((0..8).map(Value::Node).collect()),
            Value::Int(21),
        ],
    )
}

fn bench_tuple_hash(c: &mut Criterion) {
    let t = sample_tuple();
    c.bench_function("tuple_std_hash", |b| {
        b.iter(|| {
            let mut h = DefaultHasher::new();
            black_box(&t).hash(&mut h);
            h.finish()
        });
    });
    let p = path_tuple();
    c.bench_function("tuple_vid_pathvector", |b| b.iter(|| black_box(&p).vid()));
    let u = sample_tuple();
    c.bench_function("tuple_eq_interned", |b| {
        b.iter(|| black_box(&t) == black_box(&u));
    });
}

fn bench_intern(c: &mut Criterion) {
    // Interning an already-known string: the hot path (every Tuple::new from
    // a string literal takes it).
    c.bench_function("symbol_intern_hit", |b| {
        Symbol::intern("bestPathCost");
        b.iter(|| Symbol::intern(black_box("bestPathCost")));
    });
    // Resolution must be free (pointer copy).
    let s = Symbol::intern("bestPathCost");
    c.bench_function("symbol_resolve", |b| b.iter(|| black_box(s).as_str().len()));
    // Copy-equality against another symbol (pointer compare).
    let t = Symbol::intern("pathCost");
    c.bench_function("symbol_eq", |b| b.iter(|| black_box(s) == black_box(t)));
}

fn bench_wire_encode(c: &mut Criterion) {
    let t = sample_tuple();
    let p = path_tuple();
    c.bench_function("wire_size_tuple", |b| b.iter(|| black_box(&t).wire_size()));
    c.bench_function("wire_message_size_pathvector", |b| {
        b.iter(|| wire::message_size(std::slice::from_ref(black_box(&p)), 24));
    });
    c.bench_function("encode_for_hash_pathvector", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(128);
            for v in &p.values {
                v.encode_for_hash(&mut buf);
            }
            buf.len()
        });
    });
}

criterion_group!(benches, bench_tuple_hash, bench_intern, bench_wire_encode);
criterion_main!(benches);
