//! Micro-benchmarks of the primitives underlying provenance maintenance:
//! vertex-identifier hashing, BDD construction/absorption, NDlog parsing and
//! the provenance rewrite.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use exspan_bdd::BddManager;
use exspan_core::{provenance_rewrite, RewriteOptions};
use exspan_ndlog::{parse_program, programs};
use exspan_types::{sha1_digest, Tuple, Value};
use std::hint::black_box;

fn bench_vertex_ids(c: &mut Criterion) {
    let tuple = Tuple::new(
        "pathCost",
        17,
        vec![Value::Node(42), Value::Int(12), Value::Node(3)],
    );
    c.bench_function("vid_sha1_tuple", |b| b.iter(|| black_box(&tuple).vid()));
    let payload = vec![0xABu8; 256];
    c.bench_function("sha1_256_bytes", |b| {
        b.iter(|| sha1_digest(black_box(&payload)));
    });
}

fn bench_bdd(c: &mut Criterion) {
    c.bench_function("bdd_build_absorbing_chain_32", |b| {
        b.iter(|| {
            let mut m = BddManager::new();
            // OR of 32 products a_i * a_{i+1}; canonical form stays small.
            let mut acc = m.constant(false);
            for i in 0..32u32 {
                let x = m.var(i);
                let y = m.var((i + 1) % 32);
                let prod = m.and(x, y);
                acc = m.or(acc, prod);
            }
            black_box(m.serialized_size(acc))
        });
    });
}

fn bench_parser_and_rewrite(c: &mut Criterion) {
    let source = programs::mincost().to_string();
    c.bench_function("parse_mincost", |b| {
        b.iter(|| parse_program("MINCOST", black_box(&source)).unwrap());
    });
    let program = programs::path_vector();
    c.bench_function("provenance_rewrite_pathvector", |b| {
        b.iter_batched(
            || program.clone(),
            |p| provenance_rewrite(&p, RewriteOptions::default()),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_vertex_ids,
    bench_bdd,
    bench_parser_and_rewrite
);
criterion_main!(benches);
