//! Micro-benchmarks of the indexed join subsystem: keyed index probes
//! vs. full-table scans across table sizes, index maintenance overhead on
//! the insert path, and join-plan compilation cost at program load.
//!
//! These pin the machinery that turned the engine's dominant cost from
//! O(|table|) scans into point lookups (the PATHVECTOR figures lean on it
//! hardest), so CI runs them (job `microbench`) and archives the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exspan_ndlog::plan::{compile_trigger_plan, ProgramPlans};
use exspan_ndlog::programs;
use exspan_runtime::Table;
use exspan_types::{NodeId, Tuple, Value};
use std::hint::black_box;

const SIZES: &[usize] = &[16, 64, 256, 1024];

/// A `path(@loc, D, P, C)`-shaped tuple: the relation the PATHVECTOR hot
/// path probes on (location, destination, cost).
fn path_row(loc: NodeId, d: NodeId, c: i64) -> Tuple {
    Tuple::new(
        "path",
        loc,
        vec![
            Value::Node(d),
            Value::list(vec![Value::Node(loc), Value::Node(d)]),
            Value::Int(c),
        ],
    )
}

fn filled_table(rows: usize, indexed: bool) -> Table {
    let mut t = Table::set_semantics("path");
    if indexed {
        t = t.with_indexes(vec![vec![0, 1], vec![0, 1, 3]]);
    }
    for i in 0..rows {
        t.insert(&path_row(0, (i % 64) as NodeId, (i / 64) as i64));
    }
    t
}

/// Probe vs. scan: find the rows of one (destination, cost) group.
fn bench_probe_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_lookup");
    for &size in SIZES {
        let table = filled_table(size, true);
        let key = [Value::Node(0), Value::Node(7)];
        group.bench_with_input(BenchmarkId::new("probe", size), &size, |b, _| {
            b.iter(|| {
                table
                    .probe(black_box(&[0, 1]), black_box(&key))
                    .expect("index exists")
                    .count()
            });
        });
        group.bench_with_input(BenchmarkId::new("scan_filter", size), &size, |b, _| {
            b.iter(|| {
                table
                    .scan()
                    .filter(|t| t.values[0] == black_box(&key)[1])
                    .count()
            });
        });
    }
    group.finish();
}

/// Index maintenance cost: inserting into an indexed vs. unindexed table.
fn bench_index_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_maintenance");
    for &indexed in &[false, true] {
        let label = if indexed { "indexed" } else { "plain" };
        group.bench_function(BenchmarkId::new("insert_1k", label), |b| {
            b.iter(|| {
                let t = filled_table(1024, indexed);
                black_box(t.len())
            });
        });
    }
    group.finish();
}

/// Plan compilation at program load: per-trigger plans and the whole-program
/// compile (plans + index demands) for the heaviest workload.
fn bench_plan_compilation(c: &mut Criterion) {
    let program = programs::path_vector().normalize();
    let pv4 = program
        .rules
        .iter()
        .find(|r| r.label == "pv4")
        .expect("pv4 exists")
        .clone();
    c.bench_function("compile_trigger_plan_pv4", |b| {
        b.iter(|| compile_trigger_plan(black_box(&pv4), 0));
    });
    c.bench_function("compile_program_plans_pathvector", |b| {
        b.iter(|| ProgramPlans::compile(black_box(&program)));
    });
}

criterion_group!(
    joins,
    bench_probe_vs_scan,
    bench_index_maintenance,
    bench_plan_compilation
);
criterion_main!(joins);
