//! Provenance-query benchmarks (the basis of Figures 11–15): distributed
//! traversal of the provenance graph under different representations,
//! traversal orders and caching settings, all through the `Deployment` API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exspan_bench::run_protocol;
use exspan_core::{Deployment, ProvenanceMode, Repr, TraversalOrder};
use exspan_ndlog::programs;
use exspan_netsim::Topology;
use exspan_types::Tuple;
use std::hint::black_box;
use std::sync::Arc;

/// Builds a 20-node testbed running MINCOST with reference-based provenance
/// and returns the deployment plus every bestPathCost tuple (query targets).
fn prepared_deployment() -> (Deployment, Vec<Arc<Tuple>>) {
    let topo = Topology::testbed_ring(20, 11);
    let deployment = run_protocol(&programs::mincost(), topo, ProvenanceMode::Reference, 1);
    let mut targets = Vec::new();
    for n in 0..20 {
        targets.extend(deployment.tuples_shared(n, "bestPathCost"));
    }
    (deployment, targets)
}

fn run_queries(
    deployment: &mut Deployment,
    targets: &[Arc<Tuple>],
    repr: Repr,
    traversal: TraversalOrder,
    caching: bool,
    count: usize,
) -> u64 {
    for (i, t) in targets.iter().cycle().take(count).enumerate() {
        let issuer = (i % 20) as u32;
        deployment
            .query(t)
            .issuer(issuer)
            .repr(repr.clone())
            .traversal(traversal)
            .cached(caching)
            .submit();
    }
    deployment.run_to_fixpoint();
    deployment.query_traffic_stats().bytes
}

fn bench_representations(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_representation");
    group.sample_size(10);
    let cases: Vec<(&'static str, Repr)> = vec![
        ("polynomial", Repr::Polynomial),
        ("bdd", Repr::Bdd),
        ("nodeset", Repr::NodeSet),
        ("count", Repr::DerivationCount),
    ];
    for (name, repr) in cases {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let (mut deployment, targets) = prepared_deployment();
                black_box(run_queries(
                    &mut deployment,
                    &targets,
                    repr.clone(),
                    TraversalOrder::Bfs,
                    false,
                    25,
                ))
            });
        });
    }
    group.finish();
}

fn bench_traversal_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_traversal_order");
    group.sample_size(10);
    let orders = [
        ("bfs", TraversalOrder::Bfs),
        ("dfs", TraversalOrder::Dfs),
        ("dfs_threshold3", TraversalOrder::DfsThreshold(3)),
        (
            "moonwalk2",
            TraversalOrder::RandomMoonwalk { fanout: 2, seed: 3 },
        ),
    ];
    for (name, order) in orders {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let (mut deployment, targets) = prepared_deployment();
                black_box(run_queries(
                    &mut deployment,
                    &targets,
                    Repr::DerivationCount,
                    order,
                    false,
                    25,
                ))
            });
        });
    }
    group.finish();
}

fn bench_caching(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_caching");
    group.sample_size(10);
    for (name, caching) in [("without_cache", false), ("with_cache", true)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let (mut deployment, targets) = prepared_deployment();
                black_box(run_queries(
                    &mut deployment,
                    &targets,
                    Repr::Polynomial,
                    TraversalOrder::Bfs,
                    caching,
                    50,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_representations,
    bench_traversal_orders,
    bench_caching
);
criterion_main!(benches);
