//! Provenance-query benchmarks (the basis of Figures 11–15): distributed
//! traversal of the provenance graph under different representations,
//! traversal orders and caching settings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exspan_bench::run_protocol;
use exspan_core::{
    BddRepr, DerivationCountRepr, NodeSetRepr, PolynomialRepr, ProvenanceMode, ProvenanceRepr,
    QueryEngine, TraversalOrder,
};
use exspan_ndlog::programs;
use exspan_netsim::Topology;
use exspan_types::Tuple;
use std::hint::black_box;

/// Builds a 20-node testbed running MINCOST with reference-based provenance
/// and returns the system plus every bestPathCost tuple (query targets).
fn prepared_system() -> (exspan_core::ProvenanceSystem, Vec<Tuple>) {
    let topo = Topology::testbed_ring(20, 11);
    let system = run_protocol(&programs::mincost(), topo, ProvenanceMode::Reference, 1);
    let mut targets = Vec::new();
    for n in 0..20 {
        targets.extend(system.engine().tuples(n, "bestPathCost"));
    }
    (system, targets)
}

fn run_queries(
    system: &mut exspan_core::ProvenanceSystem,
    targets: &[Tuple],
    repr: Box<dyn ProvenanceRepr>,
    traversal: TraversalOrder,
    caching: bool,
    count: usize,
) -> u64 {
    let mut qe = QueryEngine::new(repr, traversal);
    qe.set_caching(caching);
    for (i, t) in targets.iter().cycle().take(count).enumerate() {
        let issuer = (i % 20) as u32;
        qe.query_now(system.engine_mut(), issuer, t);
    }
    qe.run(system.engine_mut());
    qe.stats().bytes
}

/// A named constructor for one representation under test.
type ReprCase = (&'static str, fn() -> Box<dyn ProvenanceRepr>);

fn bench_representations(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_representation");
    group.sample_size(10);
    let cases: Vec<ReprCase> = vec![
        ("polynomial", || Box::new(PolynomialRepr)),
        ("bdd", || Box::new(BddRepr::new())),
        ("nodeset", || Box::new(NodeSetRepr)),
        ("count", || Box::new(DerivationCountRepr)),
    ];
    for (name, make) in cases {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let (mut system, targets) = prepared_system();
                black_box(run_queries(
                    &mut system,
                    &targets,
                    make(),
                    TraversalOrder::Bfs,
                    false,
                    25,
                ))
            })
        });
    }
    group.finish();
}

fn bench_traversal_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_traversal_order");
    group.sample_size(10);
    let orders = [
        ("bfs", TraversalOrder::Bfs),
        ("dfs", TraversalOrder::Dfs),
        ("dfs_threshold3", TraversalOrder::DfsThreshold(3)),
        (
            "moonwalk2",
            TraversalOrder::RandomMoonwalk { fanout: 2, seed: 3 },
        ),
    ];
    for (name, order) in orders {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let (mut system, targets) = prepared_system();
                black_box(run_queries(
                    &mut system,
                    &targets,
                    Box::new(DerivationCountRepr),
                    order,
                    false,
                    25,
                ))
            })
        });
    }
    group.finish();
}

fn bench_caching(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_caching");
    group.sample_size(10);
    for (name, caching) in [("without_cache", false), ("with_cache", true)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let (mut system, targets) = prepared_system();
                black_box(run_queries(
                    &mut system,
                    &targets,
                    Box::new(PolynomialRepr),
                    TraversalOrder::Bfs,
                    caching,
                    50,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_representations,
    bench_traversal_orders,
    bench_caching
);
criterion_main!(benches);
