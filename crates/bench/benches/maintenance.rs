//! Provenance-maintenance benchmarks (the basis of Figures 6–10, 16, 17):
//! running MINCOST / PATHVECTOR to fixpoint under each provenance mode and
//! measuring incremental maintenance work under a link change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exspan_bench::run_protocol;
use exspan_core::ProvenanceMode;
use exspan_ndlog::programs;
use exspan_netsim::Topology;
use std::hint::black_box;

const MODES: [ProvenanceMode; 3] = [
    ProvenanceMode::None,
    ProvenanceMode::Reference,
    ProvenanceMode::ValueBdd,
];

fn bench_fixpoint_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("mincost_fixpoint_testbed20");
    group.sample_size(10);
    for mode in MODES {
        group.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |b, &m| {
            b.iter(|| {
                let topo = Topology::testbed_ring(20, 7);
                let system = run_protocol(&programs::mincost(), topo, m, 1);
                black_box(system.total_bytes())
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("pathvector_fixpoint_testbed20");
    group.sample_size(10);
    for mode in MODES {
        group.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |b, &m| {
            b.iter(|| {
                let topo = Topology::testbed_ring(20, 7);
                let system = run_protocol(&programs::path_vector(), topo, m, 1);
                black_box(system.total_bytes())
            });
        });
    }
    group.finish();
}

fn bench_incremental_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_link_failure_paper_example");
    group.sample_size(20);
    for mode in MODES {
        group.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |b, &m| {
            b.iter(|| {
                let topo = Topology::paper_example();
                let mut system = run_protocol(&programs::mincost(), topo, m, 1);
                // Fail and restore the a-c link, forcing incremental deletion
                // and re-derivation of the affected provenance.
                system.remove_link(0, 2);
                system.run_to_fixpoint();
                system.add_link(
                    0,
                    2,
                    exspan_netsim::LinkProps::from_class(exspan_netsim::LinkClass::Custom),
                );
                system.run_to_fixpoint();
                black_box(system.total_bytes())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixpoint_modes, bench_incremental_maintenance);
criterion_main!(benches);
