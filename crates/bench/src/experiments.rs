//! Experiment drivers — one function per figure of the evaluation (§7).

use crate::report::{FigureReport, Series};
use exspan_core::{Deployment, Exspan, ProvenanceMode, Repr, TraversalOrder};
use exspan_ndlog::ast::Program;
use exspan_ndlog::programs;
use exspan_netsim::{ChurnModel, Topology};
use exspan_types::{NodeId, Tuple, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Experiment scale: the paper's parameters are expensive on a single core,
/// so the harness defaults to a reduced scale that preserves every trend and
/// can regenerate the full-scale numbers with [`Scale::paper`].
#[derive(Debug, Clone)]
pub struct Scale {
    /// Transit-stub domain counts for Figures 6 and 7 (100 nodes per domain).
    pub domains: Vec<usize>,
    /// Domains used for the churn and packet-forwarding experiments
    /// (Figures 8–10; the paper uses 2 domains = 200 nodes).
    pub traffic_domains: usize,
    /// Seconds of data-plane traffic for Figure 8.
    pub packet_duration: f64,
    /// Packets per second each node sends in Figure 8 (paper: 100).
    pub packets_per_second: f64,
    /// Seconds of churn for Figures 9 and 10 (paper: 2.5).
    pub churn_duration: f64,
    /// Link changes per churn batch (paper: 10 every 0.5 s).
    pub churn_changes_per_batch: usize,
    /// Domains used for the query experiments (Figures 11–15; paper: 1).
    pub query_domains: usize,
    /// Provenance queries per second per node (paper: 5).
    pub queries_per_second: f64,
    /// Seconds of query workload.
    pub query_duration: f64,
    /// Testbed sizes for Figure 17 (paper: 5–40 nodes).
    pub testbed_sizes: Vec<usize>,
    /// Testbed size for Figure 16 (paper: 40 nodes).
    pub testbed_nodes: usize,
    /// Base random seed.
    pub seed: u64,
    /// Shards (worker threads) executing each protocol run.  Results are
    /// bit-identical for every value; only wall-clock time changes.
    pub shards: usize,
}

impl Scale {
    /// A minimal scale for CI smoke runs: every figure in seconds, trends
    /// preserved, numbers deterministic (the committed `benchmarks/baseline`
    /// files are generated at this scale).
    pub fn tiny() -> Self {
        Scale {
            domains: vec![1],
            traffic_domains: 1,
            packet_duration: 0.4,
            packets_per_second: 5.0,
            churn_duration: 1.0,
            churn_changes_per_batch: 3,
            query_domains: 1,
            queries_per_second: 1.0,
            query_duration: 1.0,
            testbed_sizes: vec![5, 10, 20],
            testbed_nodes: 20,
            seed: 42,
            shards: 1,
        }
    }

    /// A reduced scale suitable for quick runs and Criterion benches.
    pub fn small() -> Self {
        Scale {
            domains: vec![1, 2],
            traffic_domains: 1,
            packet_duration: 1.0,
            packets_per_second: 10.0,
            churn_duration: 1.5,
            churn_changes_per_batch: 6,
            query_domains: 1,
            queries_per_second: 2.0,
            query_duration: 2.0,
            testbed_sizes: vec![5, 10, 20, 40],
            testbed_nodes: 40,
            seed: 42,
            shards: 1,
        }
    }

    /// The paper's parameters (§7).
    pub fn paper() -> Self {
        Scale {
            domains: vec![1, 2, 3, 4, 5],
            traffic_domains: 2,
            packet_duration: 4.5,
            packets_per_second: 100.0,
            churn_duration: 2.5,
            churn_changes_per_batch: 10,
            query_domains: 1,
            queries_per_second: 5.0,
            query_duration: 4.0,
            testbed_sizes: vec![5, 10, 15, 20, 25, 30, 35, 40],
            testbed_nodes: 40,
            seed: 42,
            shards: 1,
        }
    }

    /// The same scale with a different shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// The three provenance modes compared throughout the evaluation, in the
/// order the figure legends list them.
pub fn evaluation_modes() -> Vec<ProvenanceMode> {
    vec![
        ProvenanceMode::ValueBdd,
        ProvenanceMode::Reference,
        ProvenanceMode::None,
    ]
}

static DATA_DIR: std::sync::Mutex<Option<std::path::PathBuf>> = std::sync::Mutex::new(None);
static RUN_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Routes every subsequent [`run_protocol`] deployment through a persistent
/// store under `dir` (the `figures --data-dir` flag).  Each protocol run gets
/// its own fresh subdirectory: figure workloads (churn, queries, packets) are
/// driven by the experiment code rather than replayed from the journal, and
/// the traffic counters the figures report are deliberately transient, so a
/// half-finished store is never resumed *within* a figure — restart recovery
/// happens at figure granularity in the `figures` driver instead.
pub fn set_data_dir(dir: Option<std::path::PathBuf>) {
    *DATA_DIR.lock().unwrap() = dir;
    RUN_COUNTER.store(0, std::sync::atomic::Ordering::SeqCst);
}

/// Builds a deployment (links auto-seeded) and runs the protocol to fixpoint
/// on `shards` worker threads (results are identical for every shard count).
pub fn run_protocol(
    program: &Program,
    topology: Topology,
    mode: ProvenanceMode,
    shards: usize,
) -> Deployment {
    run_protocol_with(program, topology, mode, shards, false)
}

/// [`run_protocol`] with the parallel compressed-wire accounting enabled
/// (Figure 18).  A separate entry point so every pre-existing figure keeps
/// running with the accounting off, exactly as before.
fn run_protocol_compressed(
    program: &Program,
    topology: Topology,
    mode: ProvenanceMode,
    shards: usize,
) -> Deployment {
    run_protocol_with(program, topology, mode, shards, true)
}

fn run_protocol_with(
    program: &Program,
    topology: Topology,
    mode: ProvenanceMode,
    shards: usize,
    track_compressed: bool,
) -> Deployment {
    let mut builder = Exspan::builder()
        .program(program.clone())
        .topology(topology)
        .mode(mode)
        .shards(shards)
        .track_compressed(track_compressed);
    if let Some(base) = DATA_DIR.lock().unwrap().clone() {
        let run = RUN_COUNTER.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let dir = base.join(format!("run{run:04}"));
        let _ = std::fs::remove_dir_all(&dir);
        builder = builder.data_dir(dir);
    }
    let mut deployment = builder.build().expect("experiment configuration is valid");
    deployment.run_to_fixpoint();
    deployment
}

fn comm_cost_vs_nodes(program: &Program, scale: &Scale, id: &str, title: &str) -> FigureReport {
    let mut series: Vec<Series> = evaluation_modes()
        .iter()
        .map(|m| Series::new(m.label(), Vec::new()))
        .collect();
    for &domains in &scale.domains {
        let nodes = domains * 100;
        for (i, &mode) in evaluation_modes().iter().enumerate() {
            let topology = Topology::transit_stub(domains, scale.seed);
            let system = run_protocol(program, topology, mode, scale.shards);
            series[i].points.push((nodes as f64, system.avg_comm_mb()));
        }
    }
    FigureReport {
        id: id.into(),
        title: title.into(),
        x_label: "Number of Nodes".into(),
        y_label: "Average Comm. Cost (MB)".into(),
        series,
        expected_shape: "value-based ≫ reference-based ≈ no-provenance; all grow roughly \
                         linearly with the number of nodes"
            .into(),
    }
}

/// Figure 6: average communication cost (MB) for MINCOST vs network size.
pub fn figure6(scale: &Scale) -> FigureReport {
    comm_cost_vs_nodes(
        &programs::mincost(),
        scale,
        "fig6",
        "Average communication cost for MINCOST",
    )
}

/// Figure 7: average communication cost (MB) for PATHVECTOR vs network size.
pub fn figure7(scale: &Scale) -> FigureReport {
    comm_cost_vs_nodes(
        &programs::path_vector(),
        scale,
        "fig7",
        "Average communication cost for PATHVECTOR",
    )
}

/// Schedules the Figure 8 packet workload against a converged system: each
/// node picks a random peer and sends `packets_per_second` 1024-byte payloads
/// per second for `packet_duration` seconds.  Returns the simulated time the
/// workload started at.
fn drive_packet_workload(system: &mut Deployment, scale: &Scale, nodes: usize) -> f64 {
    let start = system.now();
    let mut rng = SmallRng::seed_from_u64(scale.seed);
    let interval = 1.0 / scale.packets_per_second;
    for node in 0..nodes as NodeId {
        let dest = loop {
            let d = rng.gen_range(0..nodes as NodeId);
            if d != node {
                break d;
            }
        };
        let mut t = start + rng.gen_range(0.0..interval);
        while t < start + scale.packet_duration {
            let packet = Tuple::new(
                "ePacket",
                node,
                vec![Value::Node(node), Value::Node(dest), Value::Payload(1024)],
            );
            system.schedule_delta(t, node, packet, true);
            t += interval;
        }
    }
    system.run_until(start + scale.packet_duration);
    start
}

/// Figure 8: average per-node bandwidth (MBps) over time while forwarding
/// 1024-byte packets on the data plane.
pub fn figure8(scale: &Scale) -> FigureReport {
    let mut series = Vec::new();
    for mode in evaluation_modes() {
        let topology = Topology::transit_stub(scale.traffic_domains, scale.seed);
        let nodes = topology.num_nodes();
        let mut system = run_protocol(&programs::packet_forward(), topology, mode, scale.shards);
        let start = drive_packet_workload(&mut system, scale, nodes);

        let points = rebase_bandwidth(system.avg_bandwidth_mbps(), start, scale.packet_duration);
        series.push(Series::new(system.mode().label(), points));
    }
    FigureReport {
        id: "fig8".into(),
        title: "Average bandwidth for PACKETFORWARD".into(),
        x_label: "Time (seconds)".into(),
        y_label: "Average Bandwidth (MBps)".into(),
        series,
        expected_shape: "all three curves nearly coincide: the 1024-byte payload dominates the \
                         per-packet provenance annotation"
            .into(),
    }
}

/// Drives a churn schedule against a converged system, slice by slice.
///
/// Each event's deltas are scheduled at `start + event.time`, so its
/// maintenance traffic lands at the schedule's position in the bandwidth
/// time-series; the engine clock only advances while events are processed,
/// so applying the deltas "now" would pile every batch onto the
/// initial-fixpoint buckets.  `start` is the simulated time the churn window
/// begins at (normally `deployment.now()` right after fixpoint).
pub fn drive_churn(
    system: &mut Deployment,
    churn: &ChurnModel,
    schedule: &[exspan_netsim::ChurnEvent],
    start: f64,
    duration: f64,
) {
    let mut idx = 0usize;
    let mut t = churn.interval;
    while t < duration + churn.interval {
        while idx < schedule.len() && schedule[idx].time <= t {
            system.schedule_churn_event(&schedule[idx], start + schedule[idx].time);
            idx += 1;
        }
        system.run_until(start + t + churn.interval * 0.99);
        t += churn.interval;
    }
}

fn churn_experiment(program: &Program, scale: &Scale, id: &str, title: &str) -> FigureReport {
    let mut series = Vec::new();
    for mode in evaluation_modes() {
        let topology = Topology::transit_stub(scale.traffic_domains, scale.seed);
        let churn = ChurnModel {
            interval: 0.5,
            changes_per_batch: scale.churn_changes_per_batch,
            seed: scale.seed ^ 0xC0FFEE,
        };
        let schedule = churn.schedule(&topology, scale.churn_duration);
        let mut system = run_protocol(program, topology, mode, scale.shards);
        let start = system.now();

        drive_churn(&mut system, &churn, &schedule, start, scale.churn_duration);

        let points = rebase_bandwidth(system.avg_bandwidth_mbps(), start, scale.churn_duration);
        series.push(Series::new(system.mode().label(), points));
    }
    FigureReport {
        id: id.into(),
        title: title.into(),
        x_label: "Time (seconds)".into(),
        y_label: "Average Bandwidth (MBps)".into(),
        series,
        expected_shape: "reference-based provenance hugs the no-provenance curve; value-based is \
                         several times higher"
            .into(),
    }
}

/// Figure 9: per-node bandwidth over time for MINCOST under churn.
pub fn figure9(scale: &Scale) -> FigureReport {
    churn_experiment(
        &programs::mincost(),
        scale,
        "fig9",
        "Average bandwidth for MINCOST under churn",
    )
}

/// Figure 10: per-node bandwidth over time for PATHVECTOR under churn.
pub fn figure10(scale: &Scale) -> FigureReport {
    churn_experiment(
        &programs::path_vector(),
        scale,
        "fig10",
        "Average bandwidth for PATHVECTOR under churn",
    )
}

/// Result of one query-workload run.
pub struct QueryRun {
    /// Per-node query bandwidth samples (KBps).
    pub bandwidth_kbps: Vec<(f64, f64)>,
    /// Query completion latencies in seconds.
    pub latencies: Vec<f64>,
    /// Number of completed queries.
    pub completed: usize,
    /// Total query traffic in bytes.
    pub total_bytes: u64,
}

/// Runs the query workload of §7.3: every node issues `queries_per_second`
/// provenance queries per second for `query_duration` seconds, each targeting
/// a randomly selected `bestPathCost` tuple.  All queries are submitted
/// through the deployment's builder API and progress — together with any
/// residual maintenance — under the deployment's single simulated clock.
pub fn query_workload(
    scale: &Scale,
    repr: Repr,
    traversal: TraversalOrder,
    caching: bool,
) -> QueryRun {
    let topology = Topology::transit_stub(scale.query_domains, scale.seed);
    let nodes = topology.num_nodes();
    let mut deployment = run_protocol(
        &programs::mincost(),
        topology,
        ProvenanceMode::Reference,
        scale.shards,
    );
    let start = deployment.now();

    // Gather the population of queryable tuples.  Queries target the routes
    // of a small set of "hot" destinations (operators investigate specific
    // routes repeatedly), which is what makes result caching effective; the
    // uncached runs use the identical workload for a fair comparison.
    let mut targets: Vec<Arc<Tuple>> = Vec::new();
    for n in 0..nodes.min(12) as NodeId {
        targets.extend(deployment.tuples_shared(n, "bestPathCost"));
    }
    targets.truncate(64);

    let mut rng = SmallRng::seed_from_u64(scale.seed ^ 0xABCD);
    let interval = 1.0 / scale.queries_per_second;
    for issuer in 0..nodes as NodeId {
        let mut t = start + rng.gen_range(0.0..interval);
        while t < start + scale.query_duration {
            let target = &targets[rng.gen_range(0..targets.len())];
            deployment
                .query(target)
                .issuer(issuer)
                .repr(repr.clone())
                .traversal(traversal)
                .cached(caching)
                .at(t)
                .submit();
            t += interval;
        }
    }
    deployment.run_to_fixpoint();

    let latencies: Vec<f64> = deployment
        .outcomes()
        .iter()
        .filter_map(exspan_core::QueryOutcome::latency)
        .collect();
    let completed = latencies.len();
    let bandwidth_kbps = deployment
        .query_bandwidth_samples()
        .into_iter()
        .filter(|&(t, _)| t >= start)
        .map(|(t, bps)| (t - start, bps / 1024.0 / nodes as f64))
        .collect();
    QueryRun {
        bandwidth_kbps,
        latencies,
        completed,
        total_bytes: deployment.query_traffic_stats().bytes,
    }
}

/// Figure 11: average query bandwidth (KBps) with and without caching.
pub fn figure11(scale: &Scale) -> FigureReport {
    let without = query_workload(scale, Repr::Polynomial, TraversalOrder::Bfs, false);
    let with = query_workload(scale, Repr::Polynomial, TraversalOrder::Bfs, true);
    FigureReport {
        id: "fig11".into(),
        title: "Query bandwidth with and without caching (POLYNOMIAL)".into(),
        x_label: "Time (seconds)".into(),
        y_label: "Average Bandwidth (KBps)".into(),
        series: vec![
            Series::new("Without caching", without.bandwidth_kbps),
            Series::new("With caching", with.bandwidth_kbps),
        ],
        expected_shape: "caching reduces steady-state query bandwidth substantially (the paper \
                         observes roughly 50 KBps dropping to about 20 KBps)"
            .into(),
    }
}

/// Figure 12: CDF of query completion latency with and without caching.
pub fn figure12(scale: &Scale) -> FigureReport {
    let without = query_workload(scale, Repr::Polynomial, TraversalOrder::Bfs, false);
    let with = query_workload(scale, Repr::Polynomial, TraversalOrder::Bfs, true);
    FigureReport {
        id: "fig12".into(),
        title: "CDF of query completion latency with and without caching".into(),
        x_label: "Query Completion Time (seconds)".into(),
        y_label: "Cumulative Fraction".into(),
        series: vec![
            Series::new("With caching", cdf(&with.latencies)),
            Series::new("Without caching", cdf(&without.latencies)),
        ],
        expected_shape: "all queries complete within a fraction of a second; caching shifts the \
                         CDF left (most queries answered from nearby caches)"
            .into(),
    }
}

/// Figure 13: query bandwidth for BFS, DFS and DFS-with-threshold traversal.
pub fn figure13(scale: &Scale) -> FigureReport {
    let orders: Vec<(&str, TraversalOrder)> = vec![
        ("BFS", TraversalOrder::Bfs),
        ("DFS", TraversalOrder::Dfs),
        ("DFS-Threshold", TraversalOrder::DfsThreshold(3)),
    ];
    let series = orders
        .into_iter()
        .map(|(label, order)| {
            let run = query_workload(scale, Repr::DerivationCount, order, false);
            Series::new(label, run.bandwidth_kbps)
        })
        .collect();
    FigureReport {
        id: "fig13".into(),
        title: "Query bandwidth under different traversal orders (#DERIVATION)".into(),
        x_label: "Time (seconds)".into(),
        y_label: "Average Bandwidth (KBps)".into(),
        series,
        expected_shape: "BFS ≈ DFS; DFS-with-threshold uses noticeably less bandwidth (the paper \
                         reports about 40% less) because it prunes the traversal"
            .into(),
    }
}

/// Figure 14: CDF of query latency under the three traversal orders.
pub fn figure14(scale: &Scale) -> FigureReport {
    let orders: Vec<(&str, TraversalOrder)> = vec![
        ("BFS", TraversalOrder::Bfs),
        ("DFS-Threshold", TraversalOrder::DfsThreshold(3)),
        ("DFS", TraversalOrder::Dfs),
    ];
    let series = orders
        .into_iter()
        .map(|(label, order)| {
            let run = query_workload(scale, Repr::DerivationCount, order, false);
            Series::new(label, cdf(&run.latencies))
        })
        .collect();
    FigureReport {
        id: "fig14".into(),
        title: "CDF of query latency under different traversal orders".into(),
        x_label: "Query Completion Latency (seconds)".into(),
        y_label: "Cumulative Fraction".into(),
        series,
        expected_shape: "DFS has the longest latency tail; the threshold variant removes most of \
                         it; BFS is fastest"
            .into(),
    }
}

/// Figure 15: query bandwidth for POLYNOMIAL vs BDD result representations.
pub fn figure15(scale: &Scale) -> FigureReport {
    let poly = query_workload(scale, Repr::Polynomial, TraversalOrder::Bfs, false);
    let bdd = query_workload(scale, Repr::Bdd, TraversalOrder::Bfs, false);
    FigureReport {
        id: "fig15".into(),
        title: "Query bandwidth: POLYNOMIAL vs BDD representation".into(),
        x_label: "Time (seconds)".into(),
        y_label: "Average Bandwidth (KBps)".into(),
        series: vec![
            Series::new("Polynomial", poly.bandwidth_kbps),
            Series::new("BDD", bdd.bandwidth_kbps),
        ],
        expected_shape: "the BDD (absorption) representation transfers measurably fewer bytes \
                         (the paper reports POLYNOMIAL using ~57% more bandwidth)"
            .into(),
    }
}

/// Runs PATHVECTOR to fixpoint on a testbed ring of `nodes` nodes,
/// returning the system and the fixpoint time (which `run_protocol`
/// discards but Figures 16 and 17 need).
fn run_testbed_pathvector(scale: &Scale, mode: ProvenanceMode, nodes: usize) -> (Deployment, f64) {
    let topology = Topology::testbed_ring(nodes, scale.seed);
    let mut deployment = Exspan::builder()
        .program(programs::path_vector())
        .topology(topology)
        .mode(mode)
        .shards(scale.shards)
        .build()
        .expect("experiment configuration is valid");
    let stats = deployment.run_to_fixpoint();
    (deployment, stats.fixpoint_time)
}

/// Figure 16: per-node bandwidth over time for PATHVECTOR on the testbed
/// topology (ring plus random peers, 40 nodes, degree ≤ 3).
pub fn figure16(scale: &Scale) -> FigureReport {
    let mut series = Vec::new();
    for mode in evaluation_modes() {
        let (system, fixpoint_time) = run_testbed_pathvector(scale, mode, scale.testbed_nodes);
        let points = system
            .avg_bandwidth_mbps()
            .into_iter()
            .filter(|&(t, _)| t <= fixpoint_time + 0.5)
            .map(|(t, mbps)| (t, mbps * 1024.0))
            .collect();
        series.push(Series::new(mode.label(), points));
    }
    FigureReport {
        id: "fig16".into(),
        title: "Average bandwidth for PATHVECTOR in the testbed deployment".into(),
        x_label: "Time (seconds)".into(),
        y_label: "Average Bandwidth (KBps)".into(),
        series,
        expected_shape: "reference-based adds roughly 30% over no-provenance; value-based roughly \
                         triples it (the paper reports +29% vs +204%)"
            .into(),
    }
}

/// Figure 17: fixpoint latency vs testbed size for PATHVECTOR.
pub fn figure17(scale: &Scale) -> FigureReport {
    let mut series: Vec<Series> = evaluation_modes()
        .iter()
        .map(|m| Series::new(m.label(), Vec::new()))
        .collect();
    for &n in &scale.testbed_sizes {
        for (i, &mode) in evaluation_modes().iter().enumerate() {
            let (_, fixpoint_time) = run_testbed_pathvector(scale, mode, n);
            series[i].points.push((n as f64, fixpoint_time));
        }
    }
    FigureReport {
        id: "fig17".into(),
        title: "Fixpoint latency for PATHVECTOR in various sized testbed deployments".into(),
        x_label: "Number of Nodes".into(),
        y_label: "Fixpoint Latency (seconds)".into(),
        series,
        expected_shape: "fixpoint latency grows slowly with network size and is nearly identical \
                         for all three provenance modes"
            .into(),
    }
}

/// Figure 18: compressed vs flat provenance communication cost.
///
/// Every other figure charges the flat wire model; this one additionally runs
/// the dictionary codec's accounting ([`exspan_types::compress`]) over the
/// *same* value-based provenance runs of MINCOST, PATHVECTOR and
/// PACKETFORWARD, so each program gets a flat and a compressed curve over
/// identical message streams.  The codec accounting is a parallel counter —
/// the messages themselves, and therefore Figures 6–17, are untouched.
pub fn figure18(scale: &Scale) -> FigureReport {
    let programs: [(&str, Program); 3] = [
        ("MINCOST", programs::mincost()),
        ("PATHVECTOR", programs::path_vector()),
        ("PACKETFORWARD", programs::packet_forward()),
    ];
    let mut series: Vec<Series> = Vec::with_capacity(programs.len() * 2);
    for (name, _) in &programs {
        series.push(Series::new(format!("{name} uncompressed"), Vec::new()));
        series.push(Series::new(format!("{name} compressed"), Vec::new()));
    }
    for &domains in &scale.domains {
        let nodes = domains * 100;
        for (i, (name, program)) in programs.iter().enumerate() {
            let topology = Topology::transit_stub(domains, scale.seed);
            let mut system =
                run_protocol_compressed(program, topology, ProvenanceMode::ValueBdd, scale.shards);
            if *name == "PACKETFORWARD" {
                drive_packet_workload(&mut system, scale, nodes);
            }
            series[2 * i]
                .points
                .push((nodes as f64, system.avg_comm_mb()));
            series[2 * i + 1]
                .points
                .push((nodes as f64, system.avg_comm_mb_compressed()));
        }
    }
    FigureReport {
        id: "fig18".into(),
        title: "Compressed vs flat provenance communication cost".into(),
        x_label: "Number of Nodes".into(),
        y_label: "Average Comm. Cost (MB)".into(),
        series,
        expected_shape: "the dictionary codec cuts MINCOST and PATHVECTOR communication cost by \
                         at least a quarter; PACKETFORWARD saves less because the 1024-byte \
                         payloads are charged as opaque bytes"
            .into(),
    }
}

/// Returns all figure ids in order.
pub fn all_figure_ids() -> Vec<&'static str> {
    vec![
        "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
        "fig16", "fig17", "fig18",
    ]
}

/// Runs a figure by id.
pub fn run_figure(id: &str, scale: &Scale) -> Option<FigureReport> {
    Some(match id {
        "fig6" => figure6(scale),
        "fig7" => figure7(scale),
        "fig8" => figure8(scale),
        "fig9" => figure9(scale),
        "fig10" => figure10(scale),
        "fig11" => figure11(scale),
        "fig12" => figure12(scale),
        "fig13" => figure13(scale),
        "fig14" => figure14(scale),
        "fig15" => figure15(scale),
        "fig16" => figure16(scale),
        "fig17" => figure17(scale),
        "fig18" => figure18(scale),
        _ => return None,
    })
}

/// Empirical CDF of a set of samples, as `(value, fraction ≤ value)` points.
pub fn cdf(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len().max(1) as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Rebases a bandwidth time-series so that `start` becomes time zero and only
/// `duration` seconds are kept.
fn rebase_bandwidth(samples: Vec<(f64, f64)>, start: f64, duration: f64) -> Vec<(f64, f64)> {
    samples
        .into_iter()
        .filter(|&(t, _)| t >= start && t <= start + duration)
        .map(|(t, v)| (t - start, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let samples = [0.3, 0.1, 0.2, 0.2];
        let c = cdf(&samples);
        assert_eq!(c.len(), 4);
        assert!(c.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(cdf(&[]).is_empty());
    }

    #[test]
    fn rebase_filters_and_shifts() {
        let samples = vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (5.0, 4.0)];
        let out = rebase_bandwidth(samples, 1.0, 2.0);
        assert_eq!(out, vec![(0.0, 2.0), (1.0, 3.0)]);
    }

    #[test]
    fn scales_are_ordered() {
        let small = Scale::small();
        let paper = Scale::paper();
        assert!(small.domains.len() < paper.domains.len());
        assert!(small.queries_per_second < paper.queries_per_second);
        assert_eq!(paper.domains.last(), Some(&5));
    }

    #[test]
    fn run_figure_dispatches_known_ids_only() {
        assert!(run_figure("nope", &Scale::small()).is_none());
        assert_eq!(all_figure_ids().len(), 13);
    }
}
