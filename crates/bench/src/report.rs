//! Reporting types for experiment output.

use serde::{Deserialize, Serialize};

/// One named data series of a figure, e.g. the "Ref-based Prov." curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (matching the paper's figure legends where applicable).
    pub label: String,
    /// `(x, y)` samples.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// Maximum y value (0 if empty).
    pub fn max_y(&self) -> f64 {
        self.points.iter().fold(0.0, |m, &(_, y)| m.max(y))
    }

    /// Mean y value (0 if empty).
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64
        }
    }

    /// y value at the largest x (0 if empty).
    pub fn last_y(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, y)| y)
    }
}

/// The regenerated data of one figure of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureReport {
    /// Figure identifier, e.g. `"fig6"`.
    pub id: String,
    /// Human-readable title of the figure.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// The data series.
    pub series: Vec<Series>,
    /// The qualitative shape the paper reports, for comparison.
    pub expected_shape: String,
}

/// Per-series summary statistics inside a [`BenchReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchSeries {
    /// Legend label.
    pub label: String,
    /// Mean of the series' y values (the bandwidth / comm-cost metric).
    pub mean: f64,
    /// Maximum y value.
    pub max: f64,
    /// y value at the largest x.
    pub last: f64,
    /// Number of samples.
    pub points: usize,
}

/// The machine-readable benchmark record written as `BENCH_<figure>.json`.
///
/// Everything except `wall_clock_seconds` is a function of the simulated
/// protocol run and therefore deterministic: CI regenerates these files and
/// diffs them against the committed baselines (`scripts/check_bench.sh`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Figure identifier, e.g. `"fig6"`.
    pub figure: String,
    /// Human-readable title of the figure.
    pub title: String,
    /// Scale preset the run used (`"tiny"`, `"small"`, `"paper"`).
    pub scale: String,
    /// Shard count of the runtime that produced the numbers.
    pub shards: usize,
    /// Wall-clock seconds spent regenerating the figure (informational; CI
    /// gates only on the deterministic series statistics).
    pub wall_clock_seconds: f64,
    /// y-axis unit of the series statistics.
    pub y_label: String,
    /// Summary statistics per data series.
    pub series: Vec<BenchSeries>,
}

impl BenchReport {
    /// Builds the benchmark record of one regenerated figure.
    pub fn from_figure(
        report: &FigureReport,
        scale: &str,
        shards: usize,
        wall_clock_seconds: f64,
    ) -> Self {
        BenchReport {
            figure: report.id.clone(),
            title: report.title.clone(),
            scale: scale.to_string(),
            shards,
            wall_clock_seconds,
            y_label: report.y_label.clone(),
            series: report
                .series
                .iter()
                .map(|s| BenchSeries {
                    label: s.label.clone(),
                    mean: s.mean_y(),
                    max: s.max_y(),
                    last: s.last_y(),
                    points: s.points.len(),
                })
                .collect(),
        }
    }

    /// Finds a series summary by label.
    pub fn series(&self, label: &str) -> Option<&BenchSeries> {
        self.series.iter().find(|s| s.label == label)
    }

    /// The file name this record is stored under (`BENCH_<figure>.json`).
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.figure)
    }
}

impl FigureReport {
    /// Renders the report as a readable text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        out.push_str(&format!("   x: {}, y: {}\n", self.x_label, self.y_label));
        for s in &self.series {
            out.push_str(&format!("   [{}]\n", s.label));
            for (x, y) in &s.points {
                out.push_str(&format!("     {x:>10.3}  {y:>12.4}\n"));
            }
        }
        out.push_str(&format!("   paper shape: {}\n", self.expected_shape));
        out
    }

    /// Finds a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_statistics() {
        let s = Series::new("x", vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]);
        assert_eq!(s.max_y(), 3.0);
        assert_eq!(s.mean_y(), 2.0);
        assert_eq!(s.last_y(), 2.0);
        let empty = Series::new("e", vec![]);
        assert_eq!(empty.max_y(), 0.0);
        assert_eq!(empty.mean_y(), 0.0);
        assert_eq!(empty.last_y(), 0.0);
    }

    #[test]
    fn report_renders_and_looks_up() {
        let r = FigureReport {
            id: "fig0".into(),
            title: "test".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series::new("A", vec![(1.0, 2.0)])],
            expected_shape: "flat".into(),
        };
        let text = r.to_text();
        assert!(text.contains("fig0"));
        assert!(text.contains("[A]"));
        assert!(r.series("A").is_some());
        assert!(r.series("B").is_none());
        // serde round trip
        let json = serde_json::to_string(&r).unwrap();
        let back: FigureReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.series.len(), 1);
    }
}
