//! Crash-recovery smoke test: kill a persistent deployment mid-run, recover,
//! finish, and prove the final state is byte-identical to an uninterrupted
//! run.
//!
//! ```text
//! cargo run -p exspan-bench --release --bin recovery_smoke
//! ```
//!
//! The harness re-executes itself as a child process (`--phase crash`) that
//! runs a MINCOST fixpoint plus a deterministic churn workload against a
//! persistent store and then calls `abort()` mid-workload.  The parent then
//! damages the log tail in controlled ways (or leaves it alone), recovers,
//! checks the recovered state digest against the per-batch oracle digests,
//! replays the remaining churn batches, and requires the final digest to
//! equal the uninterrupted run's.  Scenarios cover clean kills, torn WAL
//! tails, trailing garbage, snapshot-heavy stores, cold-table spill, and
//! recovery with a different shard count than the writer.
//!
//! Exit code 0 means every scenario recovered byte-identically.

use exspan_core::{Deployment, Exspan, ProvenanceMode};
use exspan_ndlog::programs;
use exspan_netsim::{LinkClass, LinkProps, Topology};
use exspan_types::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const NODES: u32 = 16;
const RING_SEED: u64 = 7;
const BATCHES: usize = 8;
const CRASH_AFTER: usize = 5;
const WORKLOAD_SEED: u64 = 0xEC5A;

fn builder(shards: usize) -> exspan_core::DeploymentBuilder {
    Exspan::builder()
        .program(programs::mincost())
        .topology(Topology::testbed_ring(NODES as usize, RING_SEED))
        .mode(ProvenanceMode::Reference)
        .shards(shards)
}

/// Applies churn batch `index` (1-based) and runs to fixpoint.  The batch is
/// a pure function of its index — the PRNG is reseeded per batch — so a
/// recovered deployment can resume at any batch boundary and replay exactly
/// the workload the oracle saw.
fn apply_batch(d: &mut Deployment, index: usize) {
    let mut rng = SmallRng::seed_from_u64(WORKLOAD_SEED ^ index as u64);
    for _ in 0..2 {
        let a = rng.gen_range(0..NODES) as NodeId;
        let mut b = rng.gen_range(0..NODES) as NodeId;
        if a == b {
            b = (b + 1) % NODES;
        }
        if d.topology().link(a, b).is_some() {
            d.remove_link(a, b);
        } else {
            d.add_link(a, b, LinkProps::from_class(LinkClass::StubStub));
        }
    }
    d.run_to_fixpoint();
}

/// Runs the full workload in memory and returns the state digest after the
/// fixpoint (`digests[0]`) and after each churn batch (`digests[i]`).
fn oracle_digests(shards: usize) -> Vec<String> {
    let mut d = builder(shards).build().expect("oracle deployment");
    d.run_to_fixpoint();
    let mut digests = vec![d.state_digest()];
    for i in 1..=BATCHES {
        apply_batch(&mut d, i);
        digests.push(d.state_digest());
    }
    digests
}

struct Scenario {
    name: &'static str,
    /// Shard count of the crashing writer process.
    writer_shards: usize,
    /// Shard count used for recovery (byte-identity must hold across both).
    recover_shards: usize,
    /// Snapshot cadence handed to the writer (`u64::MAX` = WAL-only).
    snapshot_bytes: u64,
    /// Cold-table spill budget for both writer and recoverer.
    budget_rows: Option<usize>,
    /// How to damage the store after the kill.
    damage: Damage,
    /// Batch index the recovered digest must land on.
    expect_batch: usize,
}

enum Damage {
    /// Clean kill: the log ends exactly at the last committed batch.
    None,
    /// A crash mid-append: garbage past the last committed record.
    AppendGarbage,
    /// A torn final record: the tail of the last append is missing, so the
    /// last committed batch must be discarded and recovery lands one earlier.
    ChopTail(u64),
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "clean kill, WAL-only, 1 shard",
            writer_shards: 1,
            recover_shards: 1,
            snapshot_bytes: u64::MAX,
            budget_rows: None,
            damage: Damage::None,
            expect_batch: CRASH_AFTER,
        },
        Scenario {
            name: "trailing garbage, WAL-only, 4 shards",
            writer_shards: 4,
            recover_shards: 4,
            snapshot_bytes: u64::MAX,
            budget_rows: None,
            damage: Damage::AppendGarbage,
            expect_batch: CRASH_AFTER,
        },
        Scenario {
            name: "torn tail, recovered with a different shard count",
            writer_shards: 1,
            recover_shards: 4,
            snapshot_bytes: u64::MAX,
            budget_rows: None,
            damage: Damage::ChopTail(4),
            expect_batch: CRASH_AFTER - 1,
        },
        Scenario {
            name: "snapshot-per-barrier with cold-table spill",
            writer_shards: 4,
            recover_shards: 1,
            snapshot_bytes: 1,
            budget_rows: Some(64),
            damage: Damage::AppendGarbage,
            expect_batch: CRASH_AFTER,
        },
    ]
}

/// Child phase: run the workload persistently and die mid-run without any
/// shutdown path (no checkpoint, no flush beyond the per-barrier commits).
fn crash_phase(dir: &Path, shards: usize, snapshot_bytes: u64, budget: Option<usize>) -> ! {
    let mut b = builder(shards)
        .data_dir(dir)
        .snapshot_every_bytes(snapshot_bytes);
    if let Some(rows) = budget {
        b = b.memory_budget_rows(rows);
    }
    let mut d = b.build().expect("crash-phase deployment");
    d.run_to_fixpoint();
    for i in 1..=CRASH_AFTER {
        apply_batch(&mut d, i);
    }
    eprintln!("recovery_smoke[child]: aborting after batch {CRASH_AFTER}");
    std::process::abort();
}

fn run_scenario(s: &Scenario, oracle: &[String], scratch_root: &Path) -> Result<(), String> {
    let dir = scratch_root.join(s.name.replace([' ', ','], "-"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--phase")
        .arg("crash")
        .arg("--dir")
        .arg(&dir)
        .arg("--shards")
        .arg(s.writer_shards.to_string())
        .arg("--snapshot-bytes")
        .arg(s.snapshot_bytes.to_string());
    if let Some(rows) = s.budget_rows {
        cmd.arg("--budget-rows").arg(rows.to_string());
    }
    let status = cmd.status().map_err(|e| format!("spawn child: {e}"))?;
    if status.success() {
        return Err("child was supposed to abort but exited cleanly".into());
    }

    let wal = dir.join("wal.log");
    match s.damage {
        Damage::None => {}
        Damage::AppendGarbage => {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&wal)
                .map_err(|e| format!("open {}: {e}", wal.display()))?;
            f.write_all(&[0x00, 0x00, 0x01, 0x00, 0xba, 0xad, 0xf0, 0x0d])
                .map_err(|e| format!("append garbage: {e}"))?;
        }
        Damage::ChopTail(bytes) => {
            let len = std::fs::metadata(&wal)
                .map_err(|e| format!("stat {}: {e}", wal.display()))?
                .len();
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&wal)
                .map_err(|e| format!("open {}: {e}", wal.display()))?;
            f.set_len(len.saturating_sub(bytes))
                .map_err(|e| format!("truncate: {e}"))?;
        }
    }

    let mut b = builder(s.recover_shards).data_dir(&dir);
    if let Some(rows) = s.budget_rows {
        b = b.memory_budget_rows(rows);
    }
    let mut d = b
        .build()
        .map_err(|e| format!("recovery build failed: {e}"))?;
    if !d.recovered_from_store() {
        return Err("deployment did not recover from the store".into());
    }
    let recovered = d.state_digest();
    if recovered != oracle[s.expect_batch] {
        return Err(format!(
            "recovered digest {recovered} != oracle digest after batch {} ({})",
            s.expect_batch, oracle[s.expect_batch]
        ));
    }
    for i in s.expect_batch + 1..=BATCHES {
        apply_batch(&mut d, i);
    }
    let fin = d.state_digest();
    if fin != oracle[BATCHES] {
        return Err(format!(
            "final digest {fin} != uninterrupted-run digest {}",
            oracle[BATCHES]
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--phase") {
        let mut dir = PathBuf::new();
        let mut shards = 1usize;
        let mut snapshot_bytes = u64::MAX;
        let mut budget = None;
        let mut i = 2;
        while i + 1 < args.len() + 1 {
            match args.get(i).map(String::as_str) {
                Some("--dir") => dir = PathBuf::from(&args[i + 1]),
                Some("--shards") => shards = args[i + 1].parse().expect("--shards"),
                Some("--snapshot-bytes") => {
                    snapshot_bytes = args[i + 1].parse().expect("--snapshot-bytes");
                }
                Some("--budget-rows") => budget = Some(args[i + 1].parse().expect("--budget-rows")),
                _ => break,
            }
            i += 2;
        }
        crash_phase(&dir, shards, snapshot_bytes, budget);
    }

    println!("recovery_smoke: computing oracle digests (1 shard)…");
    let oracle = oracle_digests(1);
    println!("recovery_smoke: checking digest shard-independence (4 shards)…");
    let oracle4 = oracle_digests(4);
    if oracle != oracle4 {
        eprintln!("recovery_smoke: FAIL — state digests differ between 1 and 4 shards");
        return ExitCode::FAILURE;
    }

    let scratch_root =
        std::env::temp_dir().join(format!("exspan-recovery-smoke-{}", std::process::id()));
    let mut failed = false;
    for s in scenarios() {
        print!("recovery_smoke: {} … ", s.name);
        match run_scenario(&s, &oracle, &scratch_root) {
            Ok(()) => println!("ok"),
            Err(e) => {
                println!("FAIL");
                eprintln!("recovery_smoke: {}: {e}", s.name);
                failed = true;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch_root);
    if failed {
        ExitCode::FAILURE
    } else {
        println!("recovery_smoke: all scenarios recovered byte-identically");
        ExitCode::SUCCESS
    }
}
