//! CI perf gate over the machine-readable benchmark records.
//!
//! ```text
//! check_bench <fresh-dir> <baseline-dir>          # regression + ordering gate
//! check_bench --exact <dir-a> <dir-b>             # determinism diff (ignores wall clock)
//! ```
//!
//! Default mode compares freshly generated `BENCH_*.json` files against the
//! committed baselines and fails (exit 1) if
//!
//! * any figure's per-series **mean regresses by more than 25%** (the metric
//!   is traffic or latency, so larger = worse), or
//! * the **value ≥ reference ≥ none provenance-mode ordering of the paper
//!   inverts** on any bandwidth figure, or
//! * a baseline figure is missing from the fresh output.
//!
//! All gated quantities are statistics of the *simulated* protocol run, which
//! is deterministic — so the gate is immune to runner noise while still
//! catching any change that shifts maintenance traffic.
//!
//! `--exact` mode asserts two output directories are identical except for
//! wall-clock time and shard count: CI runs the tiny scale sequentially and
//! with four shards and diffs the results, pinning the sharded runtime's
//! bit-identical guarantee.

use exspan_bench::BenchReport;
use std::collections::BTreeMap;
use std::path::Path;

/// Allowed relative regression of a series mean before the gate fails.
const MEAN_REGRESSION_TOLERANCE: f64 = 0.25;

/// Figures on which the paper's provenance-mode ordering must hold.
const ORDERED_FIGURES: &[&str] = &["fig6", "fig7", "fig8", "fig9", "fig10", "fig16"];
const VALUE_LABEL: &str = "Value-based Prov. (BDD)";
const REF_LABEL: &str = "Ref-based Prov.";
const NONE_LABEL: &str = "No Prov.";

fn load_dir(dir: &str) -> BTreeMap<String, BenchReport> {
    let mut out = BTreeMap::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("check_bench: cannot read {dir}: {e}");
            std::process::exit(2);
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("check_bench: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        match serde_json::from_str::<BenchReport>(&text) {
            Ok(report) => {
                out.insert(report.figure.clone(), report);
            }
            Err(e) => {
                eprintln!("check_bench: cannot parse {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if out.is_empty() {
        eprintln!("check_bench: no BENCH_*.json files in {dir}");
        std::process::exit(2);
    }
    out
}

fn check_regressions(
    fresh: &BTreeMap<String, BenchReport>,
    base: &BTreeMap<String, BenchReport>,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (figure, baseline) in base {
        let Some(current) = fresh.get(figure) else {
            failures.push(format!("{figure}: missing from fresh results"));
            continue;
        };
        for bs in &baseline.series {
            let Some(cs) = current.series(&bs.label) else {
                failures.push(format!("{figure}: series '{}' disappeared", bs.label));
                continue;
            };
            let allowed = bs.mean * (1.0 + MEAN_REGRESSION_TOLERANCE);
            if cs.mean > allowed {
                failures.push(format!(
                    "{figure} [{}]: mean {} regressed {:.1}% over baseline {} (allowed {:.0}%)",
                    bs.label,
                    cs.mean,
                    (cs.mean / bs.mean - 1.0) * 100.0,
                    bs.mean,
                    MEAN_REGRESSION_TOLERANCE * 100.0
                ));
            }
        }
    }
    failures
}

fn check_ordering(fresh: &BTreeMap<String, BenchReport>) -> Vec<String> {
    let mut failures = Vec::new();
    for figure in ORDERED_FIGURES {
        let Some(report) = fresh.get(*figure) else {
            continue;
        };
        let (Some(value), Some(reference), Some(none)) = (
            report.series(VALUE_LABEL),
            report.series(REF_LABEL),
            report.series(NONE_LABEL),
        ) else {
            continue;
        };
        if value.mean < reference.mean {
            failures.push(format!(
                "{figure}: value-based mean {} fell below reference-based mean {} — the paper's \
                 ordering inverted",
                value.mean, reference.mean
            ));
        }
        if reference.mean < none.mean {
            failures.push(format!(
                "{figure}: reference-based mean {} fell below no-provenance mean {} — the paper's \
                 ordering inverted",
                reference.mean, none.mean
            ));
        }
    }
    failures
}

fn check_exact(
    a: &BTreeMap<String, BenchReport>,
    b: &BTreeMap<String, BenchReport>,
) -> Vec<String> {
    let mut failures = Vec::new();
    for key in a.keys().chain(b.keys().filter(|k| !a.contains_key(*k))) {
        match (a.get(key), b.get(key)) {
            (Some(ra), Some(rb)) => {
                if ra.series.len() != rb.series.len() {
                    failures.push(format!("{key}: series count differs"));
                    continue;
                }
                for (sa, sb) in ra.series.iter().zip(&rb.series) {
                    // Bit-exact comparison: the sharded runtime promises
                    // identical floating-point statistics, not just close ones.
                    if sa.label != sb.label
                        || sa.mean != sb.mean
                        || sa.max != sb.max
                        || sa.last != sb.last
                        || sa.points != sb.points
                    {
                        failures.push(format!(
                            "{key} [{}]: {:?} != {:?}",
                            sa.label,
                            (sa.mean, sa.max, sa.last, sa.points),
                            (sb.mean, sb.max, sb.last, sb.points)
                        ));
                    }
                }
            }
            (None, _) | (_, None) => failures.push(format!("{key}: present in only one directory")),
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (exact, dirs): (bool, Vec<&String>) = match args.first().map(String::as_str) {
        Some("--exact") => (true, args[1..].iter().collect()),
        _ => (false, args.iter().collect()),
    };
    if dirs.len() != 2 {
        eprintln!("usage: check_bench [--exact] <fresh-dir> <baseline-dir>");
        std::process::exit(2);
    }
    let (fresh_dir, base_dir) = (dirs[0], dirs[1]);
    if !Path::new(base_dir).is_dir() {
        eprintln!("check_bench: baseline directory {base_dir} does not exist");
        std::process::exit(2);
    }
    let fresh = load_dir(fresh_dir);
    let base = load_dir(base_dir);

    let failures = if exact {
        check_exact(&fresh, &base)
    } else {
        let mut f = check_regressions(&fresh, &base);
        f.extend(check_ordering(&fresh));
        f
    };

    if failures.is_empty() {
        let mode = if exact {
            "determinism diff"
        } else {
            "perf gate"
        };
        println!(
            "check_bench: {mode} passed over {} figure(s)",
            base.len().max(fresh.len())
        );
    } else {
        eprintln!("check_bench: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
