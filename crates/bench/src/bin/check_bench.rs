//! CI perf gate over the machine-readable benchmark records.
//!
//! ```text
//! check_bench <fresh-dir> <baseline-dir>          # regression + ordering gate
//! check_bench --time-budget 50 <fresh> <base>     # … plus a wall-clock budget
//! check_bench --exact <dir-a> <dir-b>             # determinism diff (ignores wall clock)
//! check_bench --exact --speedup-summary <sharded> <sequential>
//! check_bench --serve BENCH_serve.json            # service-load sanity gate
//! check_bench --serve --p99-ceiling-ms 5000 BENCH_serve.json
//! check_bench --serve --min-sessions 10000 BENCH_serve.json
//! ```
//!
//! Default mode compares freshly generated `BENCH_*.json` files against the
//! committed baselines and fails (exit 1) if
//!
//! * any figure's per-series **mean regresses by more than 25%** (the metric
//!   is traffic or latency, so larger = worse), or
//! * the **value ≥ reference ≥ none provenance-mode ordering of the paper
//!   inverts** on any bandwidth figure, or
//! * Figure 18's **dictionary codec stops paying for itself**: the compressed
//!   mean exceeds the flat mean on any program, or the MINCOST / PATHVECTOR
//!   savings fall below 25%, or
//! * a baseline figure is missing from the fresh output, or
//! * (with `--time-budget <pct>`) the suite's **total wall clock** exceeds the
//!   baseline total by more than `pct` percent.
//!
//! The series statistics are functions of the *simulated* protocol run, which
//! is deterministic — so those gates are immune to runner noise.  The wall
//! clock is real time and does vary with the runner, which is why the budget
//! is opt-in, applies to the suite total (not per figure), and ships with a
//! generous default headroom in CI (50%); it exists to catch order-of-magnitude
//! slowdowns on the hot path, not single-digit jitter.  Per-figure
//! `wall_secs` deltas are always printed for the record.
//!
//! `--exact` mode asserts two output directories are identical except for
//! wall-clock time and shard count: CI runs the tiny scale sequentially and
//! with four shards and diffs the results, pinning the sharded runtime's
//! bit-identical guarantee.  With `--speedup-summary`, a markdown
//! sequential-vs-sharded wall-clock table is appended to the file named by
//! `$GITHUB_STEP_SUMMARY` (or printed to stdout when the variable is unset),
//! so every CI run documents what the extra shards bought.
//!
//! `--serve` mode gates one `BENCH_serve.json` record produced by
//! `serve-loadgen`: nonzero throughput, zero hard protocol errors, and a
//! p99 wall-clock latency under a deliberately generous ceiling
//! (`--p99-ceiling-ms`, default 10000) — wall-clock latency varies with the
//! runner, so this gate catches order-of-magnitude service regressions, not
//! jitter.  With `--min-sessions <n>` the record must also show at least `n`
//! concurrently held sessions (the 10k-session soak gate).  When the record
//! carries an offered-load sweep (`latency p50/p99 @ N qps` series from
//! `serve-loadgen --sweep`), every phase's p99 must clear the same ceiling,
//! every phase must have completed work, and the median-latency-vs-offered-
//! load curve must stay monotone up to a 25% noise allowance: queueing
//! latency grows with offered load, so a higher-load phase reporting a
//! *much lower* median means the measurement dropped work on the floor.

use exspan_bench::BenchReport;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Allowed relative regression of a series mean before the gate fails.
const MEAN_REGRESSION_TOLERANCE: f64 = 0.25;

/// Figures on which the paper's provenance-mode ordering must hold.
/// Figure 18 deliberately stays out of this list: it charts one provenance
/// mode under two wire accountings, so the mode-ordering labels don't exist
/// there — it has its own gate ([`check_compression`]) instead.
const ORDERED_FIGURES: &[&str] = &["fig6", "fig7", "fig8", "fig9", "fig10", "fig16"];
const VALUE_LABEL: &str = "Value-based Prov. (BDD)";
const REF_LABEL: &str = "Ref-based Prov.";
const NONE_LABEL: &str = "No Prov.";

fn load_dir(dir: &str) -> BTreeMap<String, BenchReport> {
    let mut out = BTreeMap::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("check_bench: cannot read {dir}: {e}");
            std::process::exit(2);
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("check_bench: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        match serde_json::from_str::<BenchReport>(&text) {
            Ok(report) => {
                out.insert(report.figure.clone(), report);
            }
            Err(e) => {
                eprintln!("check_bench: cannot parse {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if out.is_empty() {
        eprintln!("check_bench: no BENCH_*.json files in {dir}");
        std::process::exit(2);
    }
    out
}

fn check_regressions(
    fresh: &BTreeMap<String, BenchReport>,
    base: &BTreeMap<String, BenchReport>,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (figure, baseline) in base {
        let Some(current) = fresh.get(figure) else {
            failures.push(format!("{figure}: missing from fresh results"));
            continue;
        };
        for bs in &baseline.series {
            let Some(cs) = current.series(&bs.label) else {
                failures.push(format!("{figure}: series '{}' disappeared", bs.label));
                continue;
            };
            let allowed = bs.mean * (1.0 + MEAN_REGRESSION_TOLERANCE);
            if cs.mean > allowed {
                failures.push(format!(
                    "{figure} [{}]: mean {} regressed {:.1}% over baseline {} (allowed {:.0}%)",
                    bs.label,
                    cs.mean,
                    (cs.mean / bs.mean - 1.0) * 100.0,
                    bs.mean,
                    MEAN_REGRESSION_TOLERANCE * 100.0
                ));
            }
        }
    }
    failures
}

fn check_ordering(fresh: &BTreeMap<String, BenchReport>) -> Vec<String> {
    let mut failures = Vec::new();
    for figure in ORDERED_FIGURES {
        let Some(report) = fresh.get(*figure) else {
            continue;
        };
        let (Some(value), Some(reference), Some(none)) = (
            report.series(VALUE_LABEL),
            report.series(REF_LABEL),
            report.series(NONE_LABEL),
        ) else {
            continue;
        };
        if value.mean < reference.mean {
            failures.push(format!(
                "{figure}: value-based mean {} fell below reference-based mean {} — the paper's \
                 ordering inverted",
                value.mean, reference.mean
            ));
        }
        if reference.mean < none.mean {
            failures.push(format!(
                "{figure}: reference-based mean {} fell below no-provenance mean {} — the paper's \
                 ordering inverted",
                reference.mean, none.mean
            ));
        }
    }
    failures
}

/// The figure gated by [`check_compression`] and the per-program floor on
/// the dictionary codec's savings over the flat wire model.  MINCOST and
/// PATHVECTOR ship highly redundant provenance polynomials, so the codec
/// must cut at least a quarter of their bytes; PACKETFORWARD's opaque
/// payloads only need to never cost *more* than the flat model.
const COMPRESSION_FIGURE: &str = "fig18";
const COMPRESSION_FLOORS: &[(&str, f64)] = &[
    ("MINCOST", 0.25),
    ("PATHVECTOR", 0.25),
    ("PACKETFORWARD", 0.0),
];

/// Gates Figure 18's compressed-vs-flat series: the compressed mean must
/// never exceed the flat mean, and MINCOST / PATHVECTOR must clear the 25%
/// savings floor.  Skipped silently when the fresh output has no fig18
/// record (e.g. a `--only` run of other figures).
fn check_compression(fresh: &BTreeMap<String, BenchReport>) -> Vec<String> {
    let mut failures = Vec::new();
    let Some(report) = fresh.get(COMPRESSION_FIGURE) else {
        return failures;
    };
    for &(program, floor) in COMPRESSION_FLOORS {
        let flat_label = format!("{program} uncompressed");
        let packed_label = format!("{program} compressed");
        let (Some(flat), Some(packed)) = (report.series(&flat_label), report.series(&packed_label))
        else {
            failures.push(format!(
                "{COMPRESSION_FIGURE}: series pair {flat_label:?} / {packed_label:?} is missing"
            ));
            continue;
        };
        if flat.mean <= 0.0 || flat.mean.is_nan() {
            failures.push(format!(
                "{COMPRESSION_FIGURE} [{program}]: flat comm cost is {} MB — nothing was measured",
                flat.mean
            ));
            continue;
        }
        let savings = 1.0 - packed.mean / flat.mean;
        println!(
            "  fig18: {program} codec saves {:.1}% ({:.4} MB vs {:.4} MB, floor {:.0}%)",
            savings * 100.0,
            packed.mean,
            flat.mean,
            floor * 100.0
        );
        if packed.mean > flat.mean {
            failures.push(format!(
                "{COMPRESSION_FIGURE} [{program}]: compressed mean {} exceeds flat mean {} — the \
                 codec made the wire *bigger*",
                packed.mean, flat.mean
            ));
        } else if savings < floor {
            failures.push(format!(
                "{COMPRESSION_FIGURE} [{program}]: codec saves only {:.1}%, below the {:.0}% floor",
                savings * 100.0,
                floor * 100.0
            ));
        }
    }
    failures
}

fn check_exact(
    a: &BTreeMap<String, BenchReport>,
    b: &BTreeMap<String, BenchReport>,
) -> Vec<String> {
    let mut failures = Vec::new();
    for key in a.keys().chain(b.keys().filter(|k| !a.contains_key(*k))) {
        match (a.get(key), b.get(key)) {
            (Some(ra), Some(rb)) => {
                if ra.series.len() != rb.series.len() {
                    failures.push(format!("{key}: series count differs"));
                    continue;
                }
                for (sa, sb) in ra.series.iter().zip(&rb.series) {
                    // Bit-exact comparison: the sharded runtime promises
                    // identical floating-point statistics, not just close ones.
                    if sa.label != sb.label
                        || sa.mean != sb.mean
                        || sa.max != sb.max
                        || sa.last != sb.last
                        || sa.points != sb.points
                    {
                        failures.push(format!(
                            "{key} [{}]: {:?} != {:?}",
                            sa.label,
                            (sa.mean, sa.max, sa.last, sa.points),
                            (sb.mean, sb.max, sb.last, sb.points)
                        ));
                    }
                }
            }
            (None, _) | (_, None) => failures.push(format!("{key}: present in only one directory")),
        }
    }
    failures
}

/// Prints the per-figure wall-clock deltas and enforces the optional suite
/// budget.  Returns a failure line when the budget is exceeded.
fn check_time_budget(
    fresh: &BTreeMap<String, BenchReport>,
    base: &BTreeMap<String, BenchReport>,
    budget_pct: Option<f64>,
) -> Vec<String> {
    let mut total_fresh = 0.0;
    let mut total_base = 0.0;
    println!("wall-clock per figure (fresh vs baseline):");
    for (figure, baseline) in base {
        let Some(current) = fresh.get(figure) else {
            continue;
        };
        total_fresh += current.wall_clock_seconds;
        total_base += baseline.wall_clock_seconds;
        let delta = if baseline.wall_clock_seconds > 0.0 {
            (current.wall_clock_seconds / baseline.wall_clock_seconds - 1.0) * 100.0
        } else {
            0.0
        };
        println!(
            "  {figure:>6}: {:>7.2}s vs {:>7.2}s  ({delta:+.1}%)",
            current.wall_clock_seconds, baseline.wall_clock_seconds
        );
    }
    let total_delta = if total_base > 0.0 {
        (total_fresh / total_base - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "  {:>6}: {total_fresh:>7.2}s vs {total_base:>7.2}s  ({total_delta:+.1}%)",
        "total"
    );
    let mut failures = Vec::new();
    if let Some(pct) = budget_pct {
        let allowed = total_base * (1.0 + pct / 100.0);
        if total_fresh > allowed {
            failures.push(format!(
                "suite wall clock {total_fresh:.2}s exceeds the {pct:.0}% budget over baseline \
                 {total_base:.2}s (allowed {allowed:.2}s)"
            ));
        }
    }
    failures
}

/// Renders the sequential-vs-sharded speedup table and appends it to
/// `$GITHUB_STEP_SUMMARY` (falling back to stdout).
fn write_speedup_summary(
    sharded: &BTreeMap<String, BenchReport>,
    sequential: &BTreeMap<String, BenchReport>,
) {
    let shards = sharded
        .values()
        .next()
        .map(|r| r.shards)
        .unwrap_or_default();
    let mut out = String::new();
    out.push_str(&format!(
        "### Sequential vs {shards}-shard wall clock (tiny scale)\n\n\
         | figure | sequential (s) | {shards} shards (s) | speedup |\n\
         |---|---:|---:|---:|\n"
    ));
    let mut total_seq = 0.0;
    let mut total_shard = 0.0;
    for (figure, seq) in sequential {
        let Some(sh) = sharded.get(figure) else {
            continue;
        };
        total_seq += seq.wall_clock_seconds;
        total_shard += sh.wall_clock_seconds;
        out.push_str(&format!(
            "| {figure} | {:.2} | {:.2} | {:.2}× |\n",
            seq.wall_clock_seconds,
            sh.wall_clock_seconds,
            seq.wall_clock_seconds / sh.wall_clock_seconds.max(1e-9)
        ));
    }
    out.push_str(&format!(
        "| **total** | **{total_seq:.2}** | **{total_shard:.2}** | **{:.2}×** |\n",
        total_seq / total_shard.max(1e-9)
    ));
    match std::env::var("GITHUB_STEP_SUMMARY") {
        Ok(path) if !path.is_empty() => {
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(out.as_bytes()));
            if let Err(e) = appended {
                eprintln!("check_bench: cannot append step summary to {path}: {e}");
                println!("{out}");
            }
        }
        _ => println!("{out}"),
    }
}

/// Default p99 latency ceiling for `--serve` mode, in milliseconds.  Latency
/// here is real wall clock measured under a churning deployment on a shared
/// runner, so the ceiling is generous on purpose: it trips on
/// order-of-magnitude service regressions (a stalled worker pump, an accept
/// loop gone quadratic), not on scheduler jitter.
const DEFAULT_P99_CEILING_MS: f64 = 10_000.0;

/// How far a higher-offered-load phase's median latency may dip *below* a
/// lower-load phase's before the sweep ordering gate fails.  Queueing
/// latency is monotone in offered load; a big inversion means a phase shed
/// work without counting it.  The gate runs on p50 — the median over
/// hundreds of completions is stable where p99 (the worst couple of
/// samples) is pure runner noise — and 25% absorbs scheduling jitter.
const SWEEP_ORDER_TOLERANCE: f64 = 0.25;

/// Extracts one latency series of the offered-load sweep from a serve
/// record: `(offered_qps, latency_ms)` per `latency {pXX} @ N qps` series,
/// sorted by offered load.
fn sweep_phases(report: &BenchReport, which: &str) -> Vec<(f64, f64)> {
    let prefix = format!("latency {which} @ ");
    let mut phases: Vec<(f64, f64)> = report
        .series
        .iter()
        .filter_map(|s| {
            let qps = s.label.strip_prefix(&prefix)?.strip_suffix(" qps")?;
            Some((qps.trim().parse::<f64>().ok()?, s.mean))
        })
        .collect();
    phases.sort_by(|a, b| a.0.total_cmp(&b.0));
    phases
}

/// Gates the offered-load sweep series: every phase under the p99 ceiling,
/// every phase with completed work, and no large median-latency inversion
/// as offered load rises.
fn check_sweep(report: &BenchReport, path: &str, p99_ceiling_ms: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for (qps, p99) in sweep_phases(report, "p99") {
        println!("  serve: sweep @ {qps:.0} qps → p99 {p99:.1} ms");
        if p99.is_nan() || p99 > p99_ceiling_ms {
            failures.push(format!(
                "{path}: sweep phase @ {qps:.0} qps has p99 {p99:.1} ms over the \
                 {p99_ceiling_ms:.0} ms ceiling"
            ));
        }
        let achieved_label = format!("achieved @ {qps:.0} qps");
        match report.series(&achieved_label) {
            Some(s) if s.mean > 0.0 && !s.mean.is_nan() => {}
            Some(s) => failures.push(format!(
                "{path}: sweep phase @ {qps:.0} qps achieved {} qps — nothing completed",
                s.mean
            )),
            None => failures.push(format!("{path}: series {achieved_label:?} is missing")),
        }
    }
    for pair in sweep_phases(report, "p50").windows(2) {
        let (lo_qps, lo_p50) = pair[0];
        let (hi_qps, hi_p50) = pair[1];
        if hi_p50.is_nan() || hi_p50 < lo_p50 * (1.0 - SWEEP_ORDER_TOLERANCE) {
            failures.push(format!(
                "{path}: p50 at {hi_qps:.0} qps ({hi_p50:.1} ms) fell more than {:.0}% below \
                 p50 at {lo_qps:.0} qps ({lo_p50:.1} ms) — the latency-vs-load curve inverted",
                SWEEP_ORDER_TOLERANCE * 100.0
            ));
        }
    }
    failures
}

/// Sanity gate over a single `BENCH_serve.json` record from `serve-loadgen`.
fn check_serve(path: &str, p99_ceiling_ms: f64, min_sessions: Option<f64>) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_bench: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let report: BenchReport = match serde_json::from_str(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("check_bench: cannot parse {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut failures = Vec::new();
    if report.figure != "serve" {
        failures.push(format!(
            "{path}: figure is {:?}, expected \"serve\" — is this really a serve-loadgen record?",
            report.figure
        ));
        return failures;
    }
    let mut series_mean = |label: &str| -> Option<f64> {
        let found = report.series(label).map(|s| s.mean);
        if found.is_none() {
            failures.push(format!("{path}: series {label:?} is missing"));
        }
        found
    };

    let qps = series_mean("QPS");
    let p99 = series_mean("latency p99 (ms)");
    let errors = series_mean("protocol errors");
    let sessions = series_mean("sessions");
    if let Some(qps) = qps {
        println!(
            "  serve: {qps:.1} QPS over {:.0} session(s)",
            sessions.unwrap_or(0.0)
        );
        // NaN must fail the gate, so compare on the passing side.  An
        // idle-session soak (`serve-loadgen --queries 0`, gated via
        // `--min-sessions`) legitimately completes nothing, so zero
        // throughput only fails when no session floor was requested.
        if qps.is_nan() || (qps <= 0.0 && min_sessions.is_none()) {
            failures.push(format!(
                "{path}: throughput is {qps} QPS — nothing completed"
            ));
        }
    }
    if let Some(floor) = min_sessions {
        match report.series("held sessions").map(|s| s.mean) {
            Some(held) => {
                println!("  serve: held {held:.0} concurrent session(s) (floor {floor:.0})");
                if held.is_nan() || held < floor {
                    failures.push(format!(
                        "{path}: held {held:.0} session(s), below the --min-sessions floor of \
                         {floor:.0}"
                    ));
                }
            }
            None => failures.push(format!(
                "{path}: series \"held sessions\" is missing but --min-sessions was given"
            )),
        }
    }
    if let Some(p99) = p99 {
        println!("  serve: latency p99 {p99:.1} ms (ceiling {p99_ceiling_ms:.0} ms)");
        if p99.is_nan() || p99 > p99_ceiling_ms {
            failures.push(format!(
                "{path}: latency p99 {p99:.1} ms exceeds the {p99_ceiling_ms:.0} ms ceiling"
            ));
        }
    }
    if let Some(errors) = errors {
        if errors != 0.0 {
            failures.push(format!(
                "{path}: {errors} hard protocol error(s) — the wire contract was violated"
            ));
        }
    }
    failures.extend(check_sweep(&report, path, p99_ceiling_ms));
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exact = false;
    let mut speedup_summary = false;
    let mut serve = false;
    let mut time_budget: Option<f64> = None;
    let mut p99_ceiling_ms = DEFAULT_P99_CEILING_MS;
    let mut min_sessions: Option<f64> = None;
    let mut dirs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exact" => exact = true,
            "--speedup-summary" => speedup_summary = true,
            "--serve" => serve = true,
            "--time-budget" => {
                i += 1;
                time_budget = match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(pct) if pct >= 0.0 => Some(pct),
                    _ => {
                        eprintln!("check_bench: --time-budget needs a non-negative percentage");
                        std::process::exit(2);
                    }
                };
            }
            "--p99-ceiling-ms" => {
                i += 1;
                p99_ceiling_ms = match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(ms) if ms > 0.0 => ms,
                    _ => {
                        eprintln!("check_bench: --p99-ceiling-ms needs a positive number");
                        std::process::exit(2);
                    }
                };
            }
            "--min-sessions" => {
                i += 1;
                min_sessions = match args.get(i).and_then(|s| s.parse::<f64>().ok()) {
                    Some(n) if n > 0.0 => Some(n),
                    _ => {
                        eprintln!("check_bench: --min-sessions needs a positive number");
                        std::process::exit(2);
                    }
                };
            }
            other if other.starts_with("--") => {
                eprintln!("check_bench: unknown flag {other}");
                std::process::exit(2);
            }
            dir => dirs.push(dir.to_string()),
        }
        i += 1;
    }
    if serve {
        // `--serve` takes a single record file and shares nothing with the
        // directory-diff modes; mixing their flags would silently gate nothing.
        if exact || speedup_summary || time_budget.is_some() {
            eprintln!("check_bench: --serve cannot be combined with the directory-diff flags");
            std::process::exit(2);
        }
        if dirs.len() != 1 {
            eprintln!(
                "usage: check_bench --serve [--p99-ceiling-ms <ms>] [--min-sessions <n>] \
                 <BENCH_serve.json>"
            );
            std::process::exit(2);
        }
        let failures = check_serve(&dirs[0], p99_ceiling_ms, min_sessions);
        if failures.is_empty() {
            println!("check_bench: serve gate passed");
            return;
        }
        eprintln!("check_bench: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    if p99_ceiling_ms != DEFAULT_P99_CEILING_MS {
        eprintln!("check_bench: --p99-ceiling-ms only applies to --serve mode");
        std::process::exit(2);
    }
    if min_sessions.is_some() {
        eprintln!("check_bench: --min-sessions only applies to --serve mode");
        std::process::exit(2);
    }
    if dirs.len() != 2 {
        eprintln!(
            "usage: check_bench [--exact] [--speedup-summary] [--time-budget <pct>] \
             <fresh-dir> <baseline-dir>"
        );
        std::process::exit(2);
    }
    // Reject flag combinations that would otherwise be silently ignored — a
    // perf gate that looks enabled but never runs is worse than a usage error.
    if exact && time_budget.is_some() {
        eprintln!("check_bench: --time-budget applies to the perf gate, not --exact mode");
        std::process::exit(2);
    }
    if speedup_summary && !exact {
        eprintln!("check_bench: --speedup-summary requires --exact (sharded vs sequential dirs)");
        std::process::exit(2);
    }
    let (fresh_dir, base_dir) = (&dirs[0], &dirs[1]);
    if !Path::new(base_dir).is_dir() {
        eprintln!("check_bench: baseline directory {base_dir} does not exist");
        std::process::exit(2);
    }
    let fresh = load_dir(fresh_dir);
    let base = load_dir(base_dir);

    let failures = if exact {
        let f = check_exact(&fresh, &base);
        if speedup_summary && f.is_empty() {
            write_speedup_summary(&fresh, &base);
        }
        f
    } else {
        let mut f = check_regressions(&fresh, &base);
        f.extend(check_ordering(&fresh));
        f.extend(check_compression(&fresh));
        f.extend(check_time_budget(&fresh, &base, time_budget));
        f
    };

    if failures.is_empty() {
        let mode = if exact {
            "determinism diff"
        } else {
            "perf gate"
        };
        println!(
            "check_bench: {mode} passed over {} figure(s)",
            base.len().max(fresh.len())
        );
    } else {
        eprintln!("check_bench: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
