//! Regenerates the figures of the ExSPAN evaluation (§7).
//!
//! ```text
//! cargo run -p exspan-bench --release --bin figures            # all figures, reduced scale
//! cargo run -p exspan-bench --release --bin figures -- --only fig6 fig7
//! cargo run -p exspan-bench --release --bin figures -- --scale paper
//! cargo run -p exspan-bench --release --bin figures -- --json results.json
//! ```

use exspan_bench::{all_figure_ids, run_figure, FigureReport, Scale};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::small();
    let mut only: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("paper") => scale = Scale::paper(),
                    Some("small") | None => scale = Scale::small(),
                    Some(other) => {
                        eprintln!("unknown scale '{other}' (expected 'small' or 'paper')");
                        std::process::exit(2);
                    }
                }
            }
            "--only" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    only.push(args[i].clone());
                    i += 1;
                }
                continue;
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--scale small|paper] [--only figN...] [--json FILE]\n\
                     figures: {}",
                    all_figure_ids().join(", ")
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}', try --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let ids: Vec<String> = if only.is_empty() {
        all_figure_ids().iter().map(|s| s.to_string()).collect()
    } else {
        only
    };

    let mut reports: Vec<FigureReport> = Vec::new();
    for id in &ids {
        let start = Instant::now();
        match run_figure(id, &scale) {
            Some(report) => {
                println!("{}", report.to_text());
                println!(
                    "   (regenerated in {:.1}s)\n",
                    start.elapsed().as_secs_f64()
                );
                reports.push(report);
            }
            None => eprintln!(
                "unknown figure id '{id}', known ids: {:?}",
                all_figure_ids()
            ),
        }
    }

    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&reports) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("failed to write {path}: {e}");
                } else {
                    println!("wrote {} figure reports to {path}", reports.len());
                }
            }
            Err(e) => eprintln!("failed to serialize reports: {e}"),
        }
    }
}
