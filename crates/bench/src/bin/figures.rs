//! Regenerates the figures of the ExSPAN evaluation (§7).
//!
//! ```text
//! cargo run -p exspan-bench --release --bin figures            # all figures, reduced scale
//! cargo run -p exspan-bench --release --bin figures -- --only fig6 fig7
//! cargo run -p exspan-bench --release --bin figures -- --scale paper
//! cargo run -p exspan-bench --release --bin figures -- --shards 4
//! cargo run -p exspan-bench --release --bin figures -- --json out/   # one BENCH_figN.json per figure
//! ```
//!
//! `--json DIR` writes one machine-readable `BENCH_<figure>.json` record per
//! figure (series means/maxes, wall clock, shard count) — the format the CI
//! perf gate (`scripts/check_bench.sh`) compares against the committed
//! `benchmarks/baseline` files.

use exspan_bench::{all_figure_ids, run_figure, BenchReport, Scale};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale_name = String::from("small");
    let mut only: Vec<String> = Vec::new();
    let mut json_dir: Option<String> = None;
    let mut shards: usize = 1;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(name @ ("tiny" | "small" | "paper")) => scale_name = name.to_string(),
                    None => {}
                    Some(other) => {
                        eprintln!("unknown scale '{other}' (expected 'tiny', 'small' or 'paper')");
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                i += 1;
                shards = match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--shards needs a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--only" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    only.push(args[i].clone());
                    i += 1;
                }
                continue;
            }
            "--json" => {
                i += 1;
                json_dir = args.get(i).cloned();
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--scale tiny|small|paper] [--shards N] [--only figN...] \
                     [--json DIR]\n\
                     figures: {}",
                    all_figure_ids().join(", ")
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}', try --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let scale = match scale_name.as_str() {
        "tiny" => Scale::tiny(),
        "paper" => Scale::paper(),
        _ => Scale::small(),
    }
    .with_shards(shards);

    let ids: Vec<String> = if only.is_empty() {
        all_figure_ids()
            .iter()
            .map(std::string::ToString::to_string)
            .collect()
    } else {
        only
    };

    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create {dir}: {e}");
            std::process::exit(1);
        }
    }

    let total = Instant::now();
    let mut written = 0usize;
    for id in &ids {
        let start = Instant::now();
        match run_figure(id, &scale) {
            Some(report) => {
                let elapsed = start.elapsed().as_secs_f64();
                println!("{}", report.to_text());
                println!("   (regenerated in {elapsed:.1}s)\n");
                if let Some(dir) = &json_dir {
                    let bench = BenchReport::from_figure(&report, &scale_name, shards, elapsed);
                    let path = format!("{dir}/{}", bench.file_name());
                    match serde_json::to_string_pretty(&bench) {
                        Ok(json) => {
                            if let Err(e) = std::fs::write(&path, json) {
                                eprintln!("failed to write {path}: {e}");
                                std::process::exit(1);
                            }
                            written += 1;
                        }
                        Err(e) => {
                            eprintln!("failed to serialize {id}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
            }
            None => {
                eprintln!(
                    "unknown figure id '{id}', known ids: {:?}",
                    all_figure_ids()
                );
                std::process::exit(2);
            }
        }
    }
    println!(
        "regenerated {} figure(s) in {:.1}s with {} shard(s)",
        ids.len(),
        total.elapsed().as_secs_f64(),
        shards
    );
    if let Some(dir) = &json_dir {
        println!("wrote {written} BENCH_*.json record(s) to {dir}");
    }
}
