//! Regenerates the figures of the ExSPAN evaluation (§7).
//!
//! ```text
//! cargo run -p exspan-bench --release --bin figures            # all figures, reduced scale
//! cargo run -p exspan-bench --release --bin figures -- --only fig6 fig7
//! cargo run -p exspan-bench --release --bin figures -- --scale paper
//! cargo run -p exspan-bench --release --bin figures -- --shards 4
//! cargo run -p exspan-bench --release --bin figures -- --json out/   # one BENCH_figN.json per figure
//! cargo run -p exspan-bench --release --bin figures -- --data-dir store/
//! ```
//!
//! `--json DIR` writes one machine-readable `BENCH_<figure>.json` record per
//! figure (series means/maxes, wall clock, shard count) — the format the CI
//! perf gate (`scripts/check_bench.sh`) compares against the committed
//! `benchmarks/baseline` files.
//!
//! `--data-dir DIR` makes the run restartable: every protocol deployment is
//! backed by a persistent store under `DIR/active`, and each finished
//! figure's record is saved under `DIR/reports`.  If the process is killed
//! mid-run, rerunning the same command recovers the already-finished figures
//! from the store and recomputes only the interrupted one, so the final
//! output set is byte-identical to an uninterrupted run (the figures report
//! deliberately transient traffic counters, so the in-progress figure is
//! recomputed from scratch rather than resumed mid-workload).

use exspan_bench::{all_figure_ids, run_figure, set_data_dir, BenchReport, Scale};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale_name = String::from("small");
    let mut only: Vec<String> = Vec::new();
    let mut json_dir: Option<String> = None;
    let mut data_dir: Option<PathBuf> = None;
    let mut shards: usize = 1;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(name @ ("tiny" | "small" | "paper")) => scale_name = name.to_string(),
                    None => {}
                    Some(other) => {
                        eprintln!("unknown scale '{other}' (expected 'tiny', 'small' or 'paper')");
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                i += 1;
                shards = match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--shards needs a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            "--only" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    only.push(args[i].clone());
                    i += 1;
                }
                continue;
            }
            "--json" => {
                i += 1;
                json_dir = args.get(i).cloned();
            }
            "--data-dir" => {
                i += 1;
                data_dir = args.get(i).map(PathBuf::from);
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--scale tiny|small|paper] [--shards N] [--only figN...] \
                     [--json DIR] [--data-dir DIR]\n\
                     figures: {}",
                    all_figure_ids().join(", ")
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}', try --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let scale = match scale_name.as_str() {
        "tiny" => Scale::tiny(),
        "paper" => Scale::paper(),
        _ => Scale::small(),
    }
    .with_shards(shards);

    let ids: Vec<String> = if only.is_empty() {
        all_figure_ids()
            .iter()
            .map(std::string::ToString::to_string)
            .collect()
    } else {
        only
    };

    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create {dir}: {e}");
            std::process::exit(1);
        }
    }

    // Restartable mode: stores keyed by scale + shard count so a rerun with
    // different parameters never reuses a stale report.
    let reports_dir = data_dir.as_ref().map(|base| {
        let dir = base
            .join("reports")
            .join(format!("{scale_name}-{shards}shard"));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("failed to create {}: {e}", dir.display());
            std::process::exit(1);
        }
        set_data_dir(Some(base.join("active")));
        dir
    });

    let total = Instant::now();
    let mut written = 0usize;
    for id in &ids {
        let stored = reports_dir.as_ref().map(|d| d.join(format!("{id}.json")));
        if let Some(bench) = stored.as_ref().and_then(|p| {
            let json = std::fs::read_to_string(p).ok()?;
            serde_json::from_str::<BenchReport>(&json).ok()
        }) {
            println!("{id}: recovered finished figure from the store\n");
            if let Some(dir) = &json_dir {
                let path = format!("{dir}/{}", bench.file_name());
                match serde_json::to_string_pretty(&bench) {
                    Ok(json) => {
                        if let Err(e) = std::fs::write(&path, json) {
                            eprintln!("failed to write {path}: {e}");
                            std::process::exit(1);
                        }
                        written += 1;
                    }
                    Err(e) => {
                        eprintln!("failed to serialize {id}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            continue;
        }
        let start = Instant::now();
        match run_figure(id, &scale) {
            Some(report) => {
                let elapsed = start.elapsed().as_secs_f64();
                println!("{}", report.to_text());
                println!("   (regenerated in {elapsed:.1}s)\n");
                let bench = BenchReport::from_figure(&report, &scale_name, shards, elapsed);
                let json = match serde_json::to_string_pretty(&bench) {
                    Ok(json) => json,
                    Err(e) => {
                        eprintln!("failed to serialize {id}: {e}");
                        std::process::exit(1);
                    }
                };
                // Persist the finished figure first, so a kill between the
                // two writes re-derives the --json record from the store.
                if let Some(path) = &stored {
                    if let Err(e) = std::fs::write(path, &json) {
                        eprintln!("failed to write {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
                if let Some(dir) = &json_dir {
                    let path = format!("{dir}/{}", bench.file_name());
                    if let Err(e) = std::fs::write(&path, &json) {
                        eprintln!("failed to write {path}: {e}");
                        std::process::exit(1);
                    }
                    written += 1;
                }
            }
            None => {
                eprintln!(
                    "unknown figure id '{id}', known ids: {:?}",
                    all_figure_ids()
                );
                std::process::exit(2);
            }
        }
    }
    println!(
        "regenerated {} figure(s) in {:.1}s with {} shard(s)",
        ids.len(),
        total.elapsed().as_secs_f64(),
        shards
    );
    if let Some(dir) = &json_dir {
        println!("wrote {written} BENCH_*.json record(s) to {dir}");
    }
}
