//! # exspan-bench
//!
//! The experiment harness that regenerates every figure of the ExSPAN
//! evaluation (paper §7).  Each `figure*` function returns the data series of
//! one figure; the `figures` binary prints them (and the paper's expected
//! shape) and EXPERIMENTS.md records a reference run.
//!
//! The harness is also reused by the Criterion benchmarks, which exercise the
//! same drivers at reduced scale.

pub mod experiments;
pub mod report;

pub use experiments::*;
pub use report::{BenchReport, BenchSeries, FigureReport, Series};
