//! Differential property tests for the indexed join subsystem.
//!
//! The compiled-plan evaluator (greedy atom ordering + secondary-index
//! probes) must be **observably identical** to the historical body-ordered
//! nested-loop scan evaluation — same visible tuples, same traffic, same
//! event counts — on randomized programs, randomized delta schedules
//! (including deletions, duplicate derivations and keyed-row replacement),
//! at one shard and at four.  `EngineConfig::join_planning = false` keeps
//! the scan path alive as the oracle.

use exspan_ndlog::ast::{
    AggFunc, ArithOp, Atom, BodyItem, CmpOp, Expr, HeadArg, Program, Rule, RuleHead, TableDecl,
    Term,
};
use exspan_netsim::{LinkClass, LinkProps, Topology};
use exspan_runtime::{Engine, EngineConfig, ShardConfig};
use exspan_types::{NodeId, Tuple, Value};
use proptest::prelude::*;

const NODES: usize = 5;

fn ring() -> Topology {
    let mut t = Topology::empty(NODES);
    let props = |cost| LinkProps {
        cost,
        ..LinkProps::from_class(LinkClass::Custom)
    };
    for i in 0..NODES {
        t.add_link(
            i as u32,
            ((i + 1) % NODES) as u32,
            props(1 + (i as i64 % 3)),
        );
    }
    t
}

/// Parameters of one randomized program.
#[derive(Debug, Clone)]
struct ProgramShape {
    /// r1's head location: the body location (local) or the neighbor
    /// argument (remote shipping).
    r1_remote: bool,
    /// Whether r2's `mid` atom shares the neighbor variable with `base`
    /// (a bound-argument probe) or binds a fresh one (a scan).
    r2_shared_neighbor: bool,
    /// Upper bound in r2's guard constraint.
    r2_bound: i64,
    /// Whether the three-atom rule r3 exists (exercises greedy reordering).
    with_three_atom_rule: bool,
    /// Whether the bounded MINCOST-style recursion through the aggregate
    /// exists (exercises group recomputation under churn).
    with_recursion: bool,
}

fn arb_shape() -> impl Strategy<Value = ProgramShape> {
    (
        any::<bool>(),
        any::<bool>(),
        2i64..=6,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(r1_remote, r2_shared_neighbor, r2_bound, with_three_atom_rule, with_recursion)| {
                ProgramShape {
                    r1_remote,
                    r2_shared_neighbor,
                    r2_bound,
                    with_three_atom_rule,
                    with_recursion,
                }
            },
        )
}

/// Builds a localized program over:
///   base(@L, N, V)  — set semantics (derivation counting)
///   mid(@L, N, V)   — set semantics
///   kv(@L, N, V)    — keyed on (L, N): replacement semantics
///   best(@L, N, min<V>) — aggregate output, keyed on (L, N)
fn build_program(shape: &ProgramShape) -> Program {
    let var = Term::var;
    let mut p = Program::new("differential")
        .with_table(TableDecl::new("base", 3))
        .with_table(TableDecl::new("mid", 3))
        .with_table(TableDecl::with_keys("kv", 3, vec![0, 1]))
        .with_table(TableDecl::with_keys("best", 3, vec![0, 1]))
        .with_table(TableDecl::new("out", 2));

    // r1: mid(@L|N, N|L, V) :- base(@L, N, V).
    let (head_loc, head_first) = if shape.r1_remote {
        (var("N"), var("L"))
    } else {
        (var("L"), var("N"))
    };
    p = p.with_rule(Rule::new(
        "r1",
        RuleHead::new(
            "mid",
            head_loc,
            vec![HeadArg::Term(head_first), HeadArg::Term(var("V"))],
        ),
        vec![BodyItem::Atom(Atom::new(
            "base",
            var("L"),
            vec![var("N"), var("V")],
        ))],
    ));

    // r2: kv(@L, N?, V1+V2) :- base(@L, N1, V1), mid(@L, N?, V2), V1+V2 < bound.
    let mid_n = if shape.r2_shared_neighbor { "N1" } else { "N2" };
    p = p.with_rule(Rule::new(
        "r2",
        RuleHead::new(
            "kv",
            var("L"),
            vec![
                HeadArg::Term(var(mid_n)),
                HeadArg::Expr(Expr::Arith(
                    ArithOp::Add,
                    Box::new(Expr::var("V1")),
                    Box::new(Expr::var("V2")),
                )),
            ],
        ),
        vec![
            BodyItem::Atom(Atom::new("base", var("L"), vec![var("N1"), var("V1")])),
            BodyItem::Atom(Atom::new("mid", var("L"), vec![var(mid_n), var("V2")])),
            BodyItem::Constraint(
                CmpOp::Lt,
                Expr::Arith(
                    ArithOp::Add,
                    Box::new(Expr::var("V1")),
                    Box::new(Expr::var("V2")),
                ),
                Expr::constant(shape.r2_bound),
            ),
        ],
    ));

    if shape.with_three_atom_rule {
        // r3: out(@L, V3) :- mid(@L, N1, V3), base(@L, N1, V1), kv(@L, N1, V3).
        // Written with the most selective atom last so the greedy planner
        // must reorder (and the executor must restore canonical order).
        p = p.with_rule(Rule::new(
            "r3",
            RuleHead::new("out", var("L"), vec![HeadArg::Term(var("V3"))]),
            vec![
                BodyItem::Atom(Atom::new("mid", var("L"), vec![var("N1"), var("V3")])),
                BodyItem::Atom(Atom::new("base", var("L"), vec![var("N1"), var("V1")])),
                BodyItem::Atom(Atom::new("kv", var("L"), vec![var("N1"), var("V3")])),
            ],
        ));
    }

    // agg: best(@L, N, min<V>) :- mid(@L, N, V).
    p = p.with_rule(Rule::new(
        "agg",
        RuleHead::new(
            "best",
            var("L"),
            vec![
                HeadArg::Term(var("N")),
                HeadArg::Aggregate(AggFunc::Min, Some("V".into())),
            ],
        ),
        vec![BodyItem::Atom(Atom::new(
            "mid",
            var("L"),
            vec![var("N"), var("V")],
        ))],
    ));

    if shape.with_recursion {
        // rec: mid(@L, N, V+1) :- best(@L, N, V), V+1 < 8  (bounded, so the
        // fixpoint terminates; churn makes the aggregate retract and re-derive).
        p = p.with_rule(Rule::new(
            "rec",
            RuleHead::new(
                "mid",
                var("L"),
                vec![
                    HeadArg::Term(var("N")),
                    HeadArg::Expr(Expr::Arith(
                        ArithOp::Add,
                        Box::new(Expr::var("V")),
                        Box::new(Expr::constant(1i64)),
                    )),
                ],
            ),
            vec![
                BodyItem::Atom(Atom::new("best", var("L"), vec![var("N"), var("V")])),
                BodyItem::Constraint(
                    CmpOp::Lt,
                    Expr::Arith(
                        ArithOp::Add,
                        Box::new(Expr::var("V")),
                        Box::new(Expr::constant(1i64)),
                    ),
                    Expr::constant(8i64),
                ),
            ],
        ));
    }

    p
}

/// One base-tuple event of the randomized schedule.
#[derive(Debug, Clone)]
struct DeltaEvent {
    node: usize,
    neighbor: usize,
    val: i64,
    /// Insert at `t`, and — when `delete_later` — delete again at `t + 0.5`.
    t_slot: u8,
    delete_later: bool,
    /// Insert the same tuple twice (duplicate derivation counting).
    duplicate: bool,
}

fn arb_schedule() -> impl Strategy<Value = Vec<DeltaEvent>> {
    proptest::collection::vec(
        (
            0usize..NODES,
            1usize..NODES,
            0i64..4,
            0u8..4,
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(
                |(node, hop, val, t_slot, delete_later, duplicate)| DeltaEvent {
                    node,
                    neighbor: (node + hop) % NODES,
                    val,
                    t_slot,
                    delete_later,
                    duplicate,
                },
            ),
        3..12,
    )
}

fn base_tuple(ev: &DeltaEvent) -> Tuple {
    Tuple::new(
        "base",
        ev.node as NodeId,
        vec![Value::Node(ev.neighbor as NodeId), Value::Int(ev.val)],
    )
}

const RELATIONS: &[&str] = &["base", "mid", "kv", "best", "out"];

/// Runs the schedule to fixpoint and snapshots every observable: visible
/// tuples per relation, derivation counts of the scheduled base tuples,
/// per-node traffic and processed-event counts.
fn run(
    shape: &ProgramShape,
    schedule: &[DeltaEvent],
    shards: usize,
    join_planning: bool,
) -> (Vec<std::sync::Arc<Tuple>>, Vec<usize>, Vec<u64>, u64) {
    run_program(build_program(shape), schedule, shards, join_planning)
}

fn run_program(
    program: Program,
    schedule: &[DeltaEvent],
    shards: usize,
    join_planning: bool,
) -> (Vec<std::sync::Arc<Tuple>>, Vec<usize>, Vec<u64>, u64) {
    let mut engine = Engine::new(
        program,
        ring(),
        EngineConfig {
            shards: ShardConfig::with_shards(shards),
            join_planning,
            ..Default::default()
        },
    );
    for ev in schedule {
        let t = 0.1 + ev.t_slot as f64;
        engine.schedule_delta(t, ev.node as NodeId, base_tuple(ev), true);
        if ev.duplicate {
            engine.schedule_delta(t + 0.25, ev.node as NodeId, base_tuple(ev), true);
        }
        if ev.delete_later {
            engine.schedule_delta(t + 0.5, ev.node as NodeId, base_tuple(ev), false);
        }
    }
    let stats = engine.run_to_fixpoint();
    let mut tuples = Vec::new();
    for rel in RELATIONS {
        tuples.extend(engine.tuples_everywhere_shared(rel));
    }
    let counts = schedule
        .iter()
        .map(|ev| engine.derivation_count(&base_tuple(ev)))
        .collect();
    assert_eq!(
        engine.eval_errors(),
        0,
        "analyzer-accepted program produced statically-impossible eval errors"
    );
    (
        tuples,
        counts,
        engine.stats().bytes_sent.clone(),
        stats.steps,
    )
}

/// A mutation applied to an otherwise-valid generated program.  The first
/// two inject defects the static analyzer *guarantees* it catches (unbound
/// head variables, unknown built-ins) — exactly the error classes whose
/// runtime counterparts [`Engine::eval_errors`] counts.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mutation {
    None,
    /// r1's head references a variable its body never binds (`E004`).
    UnboundHeadVar,
    /// r2's guard calls a built-in that does not exist (`E010`).
    UnknownFunction,
    /// r2's head columns are swapped — may or may not be a type conflict
    /// depending on what the rest of the program pins down (`E009` when it
    /// is); either way an accepted program must still run cleanly.
    SwappedHeadCols,
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    (0usize..4).prop_map(|i| match i {
        0 => Mutation::None,
        1 => Mutation::UnboundHeadVar,
        2 => Mutation::UnknownFunction,
        _ => Mutation::SwappedHeadCols,
    })
}

fn mutate(mut program: Program, mutation: Mutation) -> Program {
    match mutation {
        Mutation::None => {}
        Mutation::UnboundHeadVar => {
            program.rules[0].head.args[1] = HeadArg::Term(Term::var("Unbound"));
        }
        Mutation::UnknownFunction => {
            if let Some(BodyItem::Constraint(_, lhs, _)) = program.rules[1]
                .body
                .iter_mut()
                .find(|i| matches!(i, BodyItem::Constraint(..)))
            {
                *lhs = Expr::Call("f_bogus".into(), vec![Expr::var("V1")]);
            }
        }
        Mutation::SwappedHeadCols => {
            program.rules[1].head.args.swap(0, 1);
        }
    }
    program
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Indexed evaluation (1 and 4 shards) is observably identical to the
    /// scan-path oracle on randomized programs, deltas and deletions.
    #[test]
    fn indexed_joins_match_scan_oracle(shape in arb_shape(), schedule in arb_schedule()) {
        let oracle = run(&shape, &schedule, 1, false);
        let planned = run(&shape, &schedule, 1, true);
        prop_assert_eq!(&oracle, &planned, "planned run diverged at 1 shard");
        let planned4 = run(&shape, &schedule, 4, true);
        prop_assert_eq!(&oracle, &planned4, "planned run diverged at 4 shards");
        let oracle4 = run(&shape, &schedule, 4, false);
        prop_assert_eq!(&oracle, &oracle4, "scan oracle diverged at 4 shards");
    }

    /// The static analyzer's acceptance is sound for execution: any
    /// (possibly mutated) program it accepts runs to fixpoint at 1 and 4
    /// shards without a single statically-impossible evaluation error
    /// (`run_program` asserts `Engine::eval_errors() == 0`).  Conversely the
    /// two guaranteed-detectable mutations must always be rejected.
    #[test]
    fn analyzer_accepted_programs_run_cleanly(
        shape in arb_shape(),
        mutation in arb_mutation(),
        schedule in arb_schedule(),
    ) {
        let program = mutate(build_program(&shape), mutation);
        let analysis = exspan_ndlog::analyze(&program);
        match mutation {
            Mutation::UnboundHeadVar => {
                prop_assert!(
                    analysis.errors().any(|d| d.code == "E004"),
                    "unbound head variable not caught:\n{}",
                    analysis.diagnostics.render(None)
                );
            }
            Mutation::UnknownFunction => {
                prop_assert!(
                    analysis.errors().any(|d| d.code == "E010"),
                    "unknown built-in not caught:\n{}",
                    analysis.diagnostics.render(None)
                );
            }
            Mutation::None => prop_assert!(
                !analysis.has_errors(),
                "unmutated program rejected:\n{}",
                analysis.diagnostics.render(None)
            ),
            Mutation::SwappedHeadCols => {}
        }
        if !analysis.has_errors() {
            let one = run_program(program.clone(), &schedule, 1, true);
            let four = run_program(program, &schedule, 4, true);
            prop_assert_eq!(one, four, "accepted program diverged across shard counts");
        }
    }
}

/// A deterministic smoke case pinning the exact shape the proptest explores,
/// so a regression reproduces without a proptest seed.
#[test]
fn indexed_joins_match_scan_oracle_smoke() {
    let shape = ProgramShape {
        r1_remote: true,
        r2_shared_neighbor: true,
        r2_bound: 5,
        with_three_atom_rule: true,
        with_recursion: true,
    };
    let schedule: Vec<DeltaEvent> = (0..8)
        .map(|i| DeltaEvent {
            node: i % NODES,
            neighbor: (i + 1) % NODES,
            val: (i % 3) as i64,
            t_slot: (i % 4) as u8,
            delete_later: i % 2 == 0,
            duplicate: i % 3 == 0,
        })
        .collect();
    let oracle = run(&shape, &schedule, 1, false);
    assert!(!oracle.0.is_empty(), "smoke case must derive something");
    assert_eq!(oracle, run(&shape, &schedule, 1, true));
    assert_eq!(oracle, run(&shape, &schedule, 4, true));
}
