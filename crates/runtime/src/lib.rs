//! # exspan-runtime
//!
//! The distributed declarative-networking engine (RapidNet substitute):
//! a pipelined semi-naïve (PSN) evaluator for NDlog programs running over the
//! discrete-event network simulator.
//!
//! Responsibilities:
//!
//! * [`table`] — per-node materialized tables with keyed-update semantics and
//!   derivation counting (the "additional bookkeeping to maintain multiple
//!   derivations of the same tuple" of paper §4.2).
//! * [`shard`] — one shard of the runtime: the delta-processing core
//!   (distributed rule evaluation with body joins at one location, head
//!   shipped to its location specifier, MIN/MAX/COUNT aggregate maintenance,
//!   incremental insertion *and* deletion with cascades) over the subset of
//!   nodes the shard owns.
//! * [`engine`] — the [`engine::Engine`] coordinator: partitions the
//!   topology's nodes over shards by rendezvous hashing and runs them on
//!   worker threads in deterministic barrier windows, producing results
//!   bit-identical to the sequential engine
//!   ([`shard::ShardConfig::sequential`]).
//! * [`executor`] — the [`executor::Executor`] pacing trait:
//!   [`executor::SimClock`] (deterministic figures/tests clock) and
//!   [`executor::WallClock`] (real-time pacing for live service
//!   front-ends) decide how far each engine pump may advance simulated
//!   time, without ever touching event order below the horizon.
//! * [`plugin`] — the [`plugin::AnnotationPolicy`] hook through which the
//!   provenance layer implements *value-based* provenance (annotations
//!   attached to every transmitted tuple) without the engine knowing anything
//!   about provenance.
//!
//! The engine deliberately exposes low-level access (per-node tables, raw
//! message injection, a [`engine::Step`] API that surfaces unknown event
//! tuples to the caller) so that the provenance query protocol of
//! `exspan-core` can be layered on top as plain message traffic.

pub mod engine;
pub mod executor;
pub mod plugin;
pub mod shard;
pub mod table;

pub use engine::{Engine, EngineConfig, FixpointStats, Payload, Step};
pub use executor::{Executor, SimClock, WallClock};
pub use plugin::{AnnotationPolicy, AnnotationToken, ExternalSink};
pub use shard::{ShardConfig, SharedPolicy};
pub use table::{DeleteEffect, InsertEffect, Table};
