//! Per-node materialized tables.
//!
//! A table stores the tuples of one relation at one node.  Two pieces of
//! bookkeeping matter for correct incremental maintenance:
//!
//! * **Derivation counts** — the same tuple can be derived in multiple ways
//!   (e.g. `pathCost(@a,c,5)` in Figure 4 has two derivations).  A tuple is
//!   only *inserted* into the visible state when its count goes 0→1 and only
//!   *removed* when it returns to 0, so downstream rules fire exactly on
//!   presence changes.
//! * **Keyed update semantics** — NDlog materialized tables declare primary
//!   keys (e.g. `bestPathCost` is keyed on `(@S,D)`); inserting a tuple whose
//!   key already exists with different non-key attributes *replaces* the old
//!   tuple, and the replaced tuple must be cascaded as a deletion.
//!
//! Rows hold their tuple behind an [`Arc`]: the delta that inserted a tuple,
//! the stored row, and every join candidate cloned out of a scan share one
//! allocation, so the hot path bumps reference counts instead of deep-copying
//! attribute vectors.  Tables are keyed by interned [`RelId`]s, making the
//! `(node, relation)` store lookups allocation-free.

use exspan_types::{NodeId, RelId, Tuple, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Effect of an insertion on the visible state of the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertEffect {
    /// The tuple was not present before: downstream rules must fire.
    Added,
    /// The exact tuple was already present; its derivation count was
    /// incremented but the visible state did not change.
    Duplicate,
    /// A tuple with the same primary key but different attributes was
    /// replaced.  The old tuple must be cascaded as a deletion before the new
    /// tuple's insertion is propagated.
    Replaced(Arc<Tuple>),
}

/// Effect of a deletion on the visible state of the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeleteEffect {
    /// The last derivation was removed: the tuple left the table and
    /// downstream deletions must fire.
    Removed,
    /// One derivation was removed but others remain; no visible change.
    Decremented,
    /// The tuple (or that exact version of the keyed row) was not present.
    Missing,
}

#[derive(Debug, Clone)]
struct Row {
    tuple: Arc<Tuple>,
    count: usize,
}

/// A materialized table for one relation at one node.
///
/// Rows are kept in a `BTreeMap` ordered by primary key, so scans enumerate
/// tuples in one canonical order no matter in which order derivations
/// arrived.  Join enumeration order feeds the engine's event sequence
/// numbers, so canonical scans are a prerequisite for the deterministic
/// (sharded = sequential) execution the runtime guarantees.  (Interned
/// [`Value::Str`] attributes order by string *content*, so the canonical
/// order is also independent of interning order.)
#[derive(Debug, Clone)]
pub struct Table {
    relation: RelId,
    /// Primary-key positions over the full attribute list (0 = location).
    /// Empty means whole-tuple (set) semantics.
    key: Vec<usize>,
    rows: BTreeMap<Vec<Value>, Row>,
}

impl Table {
    /// Creates a table with the given primary-key positions.
    pub fn new(relation: impl Into<RelId>, key: Vec<usize>) -> Self {
        Table {
            relation: relation.into(),
            key,
            rows: BTreeMap::new(),
        }
    }

    /// Creates a table with whole-tuple (set) semantics.
    pub fn set_semantics(relation: impl Into<RelId>) -> Self {
        Self::new(relation, Vec::new())
    }

    /// Relation name.
    pub fn relation(&self) -> &str {
        self.relation.as_str()
    }

    /// Interned relation identifier.
    pub fn relation_id(&self) -> RelId {
        self.relation
    }

    /// Number of distinct tuples currently visible.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        let full: Vec<Value> = std::iter::once(Value::Node(tuple.location))
            .chain(tuple.values.iter().cloned())
            .collect();
        if self.key.is_empty() {
            full
        } else {
            self.key.iter().map(|&i| full[i].clone()).collect()
        }
    }

    /// Inserts one derivation of `tuple`, sharing the caller's allocation
    /// (the hot path: the delta's `Arc` becomes the stored row on 0→1).
    pub fn insert_shared(&mut self, tuple: &Arc<Tuple>) -> InsertEffect {
        debug_assert_eq!(tuple.relation, self.relation);
        let key = self.key_of(tuple);
        match self.rows.get_mut(&key) {
            None => {
                self.rows.insert(
                    key,
                    Row {
                        tuple: Arc::clone(tuple),
                        count: 1,
                    },
                );
                InsertEffect::Added
            }
            Some(row) if *row.tuple == **tuple => {
                // Tables keyed on a proper subset of their attributes hold
                // *functional* state (one row per key, e.g. an aggregate
                // output or a routing-table entry): re-asserting the same row
                // is idempotent.  Whole-tuple (set semantics) tables count
                // duplicate derivations instead.
                if self.key.is_empty() || self.key.len() >= tuple.arity() {
                    row.count += 1;
                }
                InsertEffect::Duplicate
            }
            Some(row) => {
                // Keyed update: replace the old version of this row.
                let old = std::mem::replace(
                    row,
                    Row {
                        tuple: Arc::clone(tuple),
                        count: 1,
                    },
                )
                .tuple;
                InsertEffect::Replaced(old)
            }
        }
    }

    /// Inserts one derivation of `tuple` (convenience wrapper for callers
    /// that do not already hold the tuple behind an `Arc`).
    pub fn insert(&mut self, tuple: &Tuple) -> InsertEffect {
        self.insert_shared(&Arc::new(tuple.clone()))
    }

    /// Deletes one derivation of `tuple`.
    pub fn delete(&mut self, tuple: &Tuple) -> DeleteEffect {
        debug_assert_eq!(tuple.relation, self.relation);
        let key = self.key_of(tuple);
        match self.rows.get_mut(&key) {
            None => DeleteEffect::Missing,
            Some(row) if *row.tuple != *tuple => {
                // A stale deletion for a version of the row that has already
                // been replaced: ignore it.
                DeleteEffect::Missing
            }
            Some(row) => {
                if row.count > 1 {
                    row.count -= 1;
                    DeleteEffect::Decremented
                } else {
                    self.rows.remove(&key);
                    DeleteEffect::Removed
                }
            }
        }
    }

    /// Returns the current derivation count of `tuple` (0 if absent).
    pub fn count(&self, tuple: &Tuple) -> usize {
        let key = self.key_of(tuple);
        match self.rows.get(&key) {
            Some(row) if *row.tuple == *tuple => row.count,
            _ => 0,
        }
    }

    /// Whether the exact tuple is currently visible.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.count(tuple) > 0
    }

    /// Iterates over the visible tuples (shared rows, in canonical order).
    pub fn scan(&self) -> impl Iterator<Item = &Arc<Tuple>> {
        self.rows.values().map(|r| &r.tuple)
    }

    /// Collects the visible tuples into a vector (sorted for determinism).
    pub fn tuples(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.scan().map(|t| (**t).clone()).collect();
        out.sort();
        out
    }
}

/// A helper collection mapping `(node, relation)` to its [`Table`], with
/// lazily-created tables.
#[derive(Debug, Default, Clone)]
pub struct TableStore {
    tables: HashMap<(NodeId, RelId), Table>,
    /// Key declarations by relation.
    keys: HashMap<RelId, Vec<usize>>,
}

impl TableStore {
    /// Creates an empty store with the given key declarations.
    pub fn new(keys: HashMap<RelId, Vec<usize>>) -> Self {
        TableStore {
            tables: HashMap::new(),
            keys,
        }
    }

    /// Returns the table for `(node, relation)`, creating it if necessary.
    pub fn table_mut(&mut self, node: NodeId, relation: RelId) -> &mut Table {
        match self.tables.entry((node, relation)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let key_spec = self.keys.get(&relation).cloned().unwrap_or_default();
                e.insert(Table::new(relation, key_spec))
            }
        }
    }

    /// Returns the table for `(node, relation)` if it exists.
    pub fn table(&self, node: NodeId, relation: RelId) -> Option<&Table> {
        self.tables.get(&(node, relation))
    }

    /// All visible tuples of `relation` at `node`.
    pub fn tuples(&self, node: NodeId, relation: RelId) -> Vec<Tuple> {
        self.table(node, relation)
            .map(|t| t.tuples())
            .unwrap_or_default()
    }

    /// All visible tuples of `relation` across every node.
    pub fn tuples_everywhere(&self, relation: RelId) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self
            .tables
            .iter()
            .filter(|((_, r), _)| *r == relation)
            .flat_map(|(_, t)| t.scan().map(|a| (**a).clone()))
            .collect();
        out.sort();
        out
    }

    /// Total number of visible tuples across all tables.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exspan_types::Symbol;

    fn path_cost(loc: NodeId, d: NodeId, c: i64) -> Tuple {
        Tuple::new("pathCost", loc, vec![Value::Node(d), Value::Int(c)])
    }

    fn best(loc: NodeId, d: NodeId, c: i64) -> Tuple {
        Tuple::new("bestPathCost", loc, vec![Value::Node(d), Value::Int(c)])
    }

    #[test]
    fn set_semantics_counts_derivations() {
        let mut t = Table::set_semantics("pathCost");
        let p = path_cost(0, 2, 5);
        assert_eq!(t.insert(&p), InsertEffect::Added);
        assert_eq!(t.insert(&p), InsertEffect::Duplicate);
        assert_eq!(t.count(&p), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.delete(&p), DeleteEffect::Decremented);
        assert!(t.contains(&p));
        assert_eq!(t.delete(&p), DeleteEffect::Removed);
        assert!(!t.contains(&p));
        assert_eq!(t.delete(&p), DeleteEffect::Missing);
    }

    #[test]
    fn shared_insert_shares_the_allocation() {
        let mut t = Table::set_semantics("pathCost");
        let p = Arc::new(path_cost(0, 2, 5));
        assert_eq!(t.insert_shared(&p), InsertEffect::Added);
        // The stored row is the same allocation, not a deep copy.
        let stored = t.scan().next().unwrap();
        assert!(Arc::ptr_eq(stored, &p));
    }

    #[test]
    fn distinct_tuples_coexist_under_set_semantics() {
        let mut t = Table::set_semantics("pathCost");
        t.insert(&path_cost(0, 2, 5));
        t.insert(&path_cost(0, 2, 7));
        assert_eq!(t.len(), 2);
        assert!(t.contains(&path_cost(0, 2, 5)));
        assert!(t.contains(&path_cost(0, 2, 7)));
    }

    #[test]
    fn keyed_table_replaces_row_with_same_key() {
        // bestPathCost(@S,D,C) keyed on (S, D) = positions (0, 1).
        let mut t = Table::new("bestPathCost", vec![0, 1]);
        assert_eq!(t.insert(&best(0, 2, 5)), InsertEffect::Added);
        let eff = t.insert(&best(0, 2, 4));
        assert_eq!(eff, InsertEffect::Replaced(Arc::new(best(0, 2, 5))));
        assert_eq!(t.len(), 1);
        assert!(t.contains(&best(0, 2, 4)));
        assert!(!t.contains(&best(0, 2, 5)));
        // Different key coexists.
        assert_eq!(t.insert(&best(0, 3, 9)), InsertEffect::Added);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn keyed_rows_are_idempotent_under_reinsertion() {
        let mut t = Table::new("bestPathCost", vec![0, 1]);
        t.insert(&best(0, 2, 5));
        assert_eq!(t.insert(&best(0, 2, 5)), InsertEffect::Duplicate);
        assert_eq!(
            t.count(&best(0, 2, 5)),
            1,
            "keyed rows do not count duplicates"
        );
        assert_eq!(t.delete(&best(0, 2, 5)), DeleteEffect::Removed);
        assert!(t.is_empty());
    }

    #[test]
    fn stale_delete_of_replaced_row_is_ignored() {
        let mut t = Table::new("bestPathCost", vec![0, 1]);
        t.insert(&best(0, 2, 5));
        t.insert(&best(0, 2, 4));
        // A delayed cascade tries to delete the old version.
        assert_eq!(t.delete(&best(0, 2, 5)), DeleteEffect::Missing);
        assert!(t.contains(&best(0, 2, 4)));
    }

    #[test]
    fn scan_and_tuples_are_deterministic() {
        let mut t = Table::set_semantics("pathCost");
        t.insert(&path_cost(0, 3, 1));
        t.insert(&path_cost(0, 2, 5));
        let tuples = t.tuples();
        assert_eq!(tuples.len(), 2);
        let mut again = t.tuples();
        again.sort();
        assert_eq!(tuples, again);
    }

    #[test]
    fn table_store_lazily_creates_with_declared_keys() {
        let best_rel = Symbol::intern("bestPathCost");
        let pc_rel = Symbol::intern("pathCost");
        let mut keys = HashMap::new();
        keys.insert(best_rel, vec![0usize, 1]);
        let mut store = TableStore::new(keys);
        store.table_mut(0, best_rel).insert(&best(0, 2, 5));
        store.table_mut(0, best_rel).insert(&best(0, 2, 3));
        assert_eq!(store.tuples(0, best_rel), vec![best(0, 2, 3)]);
        // Undeclared relations default to set semantics.
        store.table_mut(1, pc_rel).insert(&path_cost(1, 2, 5));
        store.table_mut(1, pc_rel).insert(&path_cost(1, 2, 7));
        assert_eq!(store.tuples(1, pc_rel).len(), 2);
        assert_eq!(store.total_tuples(), 3);
        assert_eq!(store.tuples_everywhere(pc_rel).len(), 2);
        assert!(store.table(9, pc_rel).is_none());
        assert!(store.tuples(9, pc_rel).is_empty());
    }
}
