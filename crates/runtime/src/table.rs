//! Per-node materialized tables.
//!
//! A table stores the tuples of one relation at one node.  Two pieces of
//! bookkeeping matter for correct incremental maintenance:
//!
//! * **Derivation counts** — the same tuple can be derived in multiple ways
//!   (e.g. `pathCost(@a,c,5)` in Figure 4 has two derivations).  A tuple is
//!   only *inserted* into the visible state when its count goes 0→1 and only
//!   *removed* when it returns to 0, so downstream rules fire exactly on
//!   presence changes.
//! * **Keyed update semantics** — NDlog materialized tables declare primary
//!   keys (e.g. `bestPathCost` is keyed on `(@S,D)`); inserting a tuple whose
//!   key already exists with different non-key attributes *replaces* the old
//!   tuple, and the replaced tuple must be cascaded as a deletion.
//!
//! Rows hold their tuple behind an [`Arc`]: the delta that inserted a tuple,
//! the stored row, and every join candidate cloned out of a scan share one
//! allocation, so the hot path bumps reference counts instead of deep-copying
//! attribute vectors.  Tables are keyed by interned [`RelId`]s, making the
//! `(node, relation)` store lookups allocation-free.

use exspan_store::{TableDump, WalOp};
use exspan_types::{NodeId, RelId, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Effect of an insertion on the visible state of the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertEffect {
    /// The tuple was not present before: downstream rules must fire.
    Added,
    /// The exact tuple was already present; its derivation count was
    /// incremented but the visible state did not change.
    Duplicate,
    /// A tuple with the same primary key but different attributes was
    /// replaced.  The old tuple must be cascaded as a deletion before the new
    /// tuple's insertion is propagated.
    Replaced(Arc<Tuple>),
}

/// Effect of a deletion on the visible state of the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeleteEffect {
    /// The last derivation was removed: the tuple left the table and
    /// downstream deletions must fire.
    Removed,
    /// One derivation was removed but others remain; no visible change.
    Decremented,
    /// The tuple (or that exact version of the keyed row) was not present.
    Missing,
}

#[derive(Debug, Clone)]
struct Row {
    tuple: Arc<Tuple>,
    count: usize,
}

/// An order-preserving secondary index over one column set.
///
/// The index maps a projection of the full attribute list (location = column
/// 0) to the set of *primary row keys* holding that projection.  Because the
/// entries are primary keys — the exact `BTreeMap` keys of [`Table::rows`] —
/// iterating one posting set enumerates its rows in the same canonical order
/// a full [`Table::scan`] would, which is what keeps indexed evaluation
/// bit-identical to scan evaluation (the probe narrows the candidate set, it
/// never reorders it).
#[derive(Debug, Clone)]
struct SecondaryIndex {
    /// Indexed columns over the full attribute list, ascending (0 = location).
    cols: Vec<usize>,
    /// Projection value → primary keys of the rows carrying it.
    postings: BTreeMap<Vec<Value>, BTreeSet<Vec<Value>>>,
}

impl SecondaryIndex {
    /// The indexed projection of `tuple`, or `None` when the tuple is too
    /// short to have every indexed column (such a tuple can never match a
    /// probe built from an atom that binds those positions).
    fn project(&self, tuple: &Tuple) -> Option<Vec<Value>> {
        let mut key = Vec::with_capacity(self.cols.len());
        for &c in &self.cols {
            if c == 0 {
                key.push(Value::Node(tuple.location));
            } else {
                key.push(tuple.values.get(c - 1)?.clone());
            }
        }
        Some(key)
    }

    fn insert(&mut self, tuple: &Tuple, row_key: &[Value]) {
        if let Some(key) = self.project(tuple) {
            self.postings
                .entry(key)
                .or_default()
                .insert(row_key.to_vec());
        }
    }

    fn remove(&mut self, tuple: &Tuple, row_key: &[Value]) {
        if let Some(key) = self.project(tuple) {
            if let Some(set) = self.postings.get_mut(&key) {
                set.remove(row_key);
                if set.is_empty() {
                    self.postings.remove(&key);
                }
            }
        }
    }
}

/// A materialized table for one relation at one node.
///
/// Rows are kept in a `BTreeMap` ordered by primary key, so scans enumerate
/// tuples in one canonical order no matter in which order derivations
/// arrived.  Join enumeration order feeds the engine's event sequence
/// numbers, so canonical scans are a prerequisite for the deterministic
/// (sharded = sequential) execution the runtime guarantees.  (Interned
/// [`Value::Str`] attributes order by string *content*, so the canonical
/// order is also independent of interning order.)
#[derive(Debug, Clone)]
pub struct Table {
    relation: RelId,
    /// Primary-key positions over the full attribute list (0 = location).
    /// Empty means whole-tuple (set) semantics.
    key: Vec<usize>,
    rows: BTreeMap<Vec<Value>, Row>,
    /// Order-preserving secondary indexes, one per demanded column set
    /// (compiled from the program's join plans; see `exspan_ndlog::plan`).
    indexes: Vec<SecondaryIndex>,
}

impl Table {
    /// Creates a table with the given primary-key positions.
    pub fn new(relation: impl Into<RelId>, key: Vec<usize>) -> Self {
        Table {
            relation: relation.into(),
            key,
            rows: BTreeMap::new(),
            indexes: Vec::new(),
        }
    }

    /// Adds maintained secondary indexes over the given column sets (builder
    /// style; columns over the full attribute list, 0 = location).
    pub fn with_indexes(mut self, demands: impl IntoIterator<Item = Vec<usize>>) -> Self {
        for cols in demands {
            self.add_index(cols);
        }
        self
    }

    /// Adds (and backfills) one maintained secondary index.  Adding a column
    /// set twice is a no-op, as is a column set the primary `rows` map can
    /// already serve point lookups for (the declared key as a prefix) — a
    /// secondary index there would duplicate the primary map and double the
    /// write cost for nothing.
    pub fn add_index(&mut self, cols: Vec<usize>) {
        if cols.is_empty()
            || self.primary_serves(&cols)
            || self.indexes.iter().any(|ix| ix.cols == cols)
        {
            return;
        }
        let mut index = SecondaryIndex {
            cols,
            postings: BTreeMap::new(),
        };
        for (row_key, row) in &self.rows {
            index.insert(&row.tuple, row_key);
        }
        self.indexes.push(index);
    }

    /// Creates a table with whole-tuple (set) semantics.
    pub fn set_semantics(relation: impl Into<RelId>) -> Self {
        Self::new(relation, Vec::new())
    }

    /// Relation name.
    pub fn relation(&self) -> &str {
        self.relation.as_str()
    }

    /// Interned relation identifier.
    pub fn relation_id(&self) -> RelId {
        self.relation
    }

    /// Number of distinct tuples currently visible.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        let full: Vec<Value> = std::iter::once(Value::Node(tuple.location))
            .chain(tuple.values.iter().cloned())
            .collect();
        if self.key.is_empty() {
            full
        } else {
            self.key.iter().map(|&i| full[i].clone()).collect()
        }
    }

    /// Inserts one derivation of `tuple`, sharing the caller's allocation
    /// (the hot path: the delta's `Arc` becomes the stored row on 0→1).
    pub fn insert_shared(&mut self, tuple: &Arc<Tuple>) -> InsertEffect {
        debug_assert_eq!(tuple.relation, self.relation);
        let key = self.key_of(tuple);
        match self.rows.get_mut(&key) {
            None => {
                for ix in &mut self.indexes {
                    ix.insert(tuple, &key);
                }
                self.rows.insert(
                    key,
                    Row {
                        tuple: Arc::clone(tuple),
                        count: 1,
                    },
                );
                InsertEffect::Added
            }
            Some(row) if *row.tuple == **tuple => {
                // Tables keyed on a proper subset of their attributes hold
                // *functional* state (one row per key, e.g. an aggregate
                // output or a routing-table entry): re-asserting the same row
                // is idempotent.  Whole-tuple (set semantics) tables count
                // duplicate derivations instead.
                if self.key.is_empty() || self.key.len() >= tuple.arity() {
                    row.count += 1;
                }
                InsertEffect::Duplicate
            }
            Some(row) => {
                // Keyed update: replace the old version of this row.  The
                // primary key is unchanged but non-key attributes (which
                // secondary indexes may cover) are not.
                let old = std::mem::replace(
                    row,
                    Row {
                        tuple: Arc::clone(tuple),
                        count: 1,
                    },
                )
                .tuple;
                for ix in &mut self.indexes {
                    ix.remove(&old, &key);
                    ix.insert(tuple, &key);
                }
                InsertEffect::Replaced(old)
            }
        }
    }

    /// Inserts one derivation of `tuple` (convenience wrapper for callers
    /// that do not already hold the tuple behind an `Arc`).
    pub fn insert(&mut self, tuple: &Tuple) -> InsertEffect {
        self.insert_shared(&Arc::new(tuple.clone()))
    }

    /// Deletes one derivation of `tuple`.
    pub fn delete(&mut self, tuple: &Tuple) -> DeleteEffect {
        debug_assert_eq!(tuple.relation, self.relation);
        let key = self.key_of(tuple);
        match self.rows.get_mut(&key) {
            None => DeleteEffect::Missing,
            Some(row) if *row.tuple != *tuple => {
                // A stale deletion for a version of the row that has already
                // been replaced: ignore it.
                DeleteEffect::Missing
            }
            Some(row) => {
                if row.count > 1 {
                    row.count -= 1;
                    DeleteEffect::Decremented
                } else {
                    let removed = self.rows.remove(&key).expect("row just matched");
                    for ix in &mut self.indexes {
                        ix.remove(&removed.tuple, &key);
                    }
                    DeleteEffect::Removed
                }
            }
        }
    }

    /// Returns the current derivation count of `tuple` (0 if absent).
    pub fn count(&self, tuple: &Tuple) -> usize {
        let key = self.key_of(tuple);
        match self.rows.get(&key) {
            Some(row) if *row.tuple == *tuple => row.count,
            _ => 0,
        }
    }

    /// Whether the exact tuple is currently visible.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.count(tuple) > 0
    }

    /// Reinstates one row with an explicit derivation count, maintaining
    /// the secondary indexes.  Used by snapshot/spill recovery, which hands
    /// rows back in the exact `(tuple, count)` form [`Table::rows_with_counts`]
    /// emitted them in — the rebuilt table is structurally identical to the
    /// one that was dumped.
    pub fn restore(&mut self, tuple: Arc<Tuple>, count: u64) {
        debug_assert_eq!(tuple.relation, self.relation);
        let key = self.key_of(&tuple);
        for ix in &mut self.indexes {
            ix.insert(&tuple, &key);
        }
        self.rows.insert(
            key,
            Row {
                tuple,
                count: count as usize,
            },
        );
    }

    /// Iterates the visible rows with their derivation counts, in canonical
    /// scan order (the persistence dump format).
    pub fn rows_with_counts(&self) -> impl Iterator<Item = (&Arc<Tuple>, u64)> {
        self.rows.values().map(|r| (&r.tuple, r.count as u64))
    }

    /// Iterates over the visible tuples (shared rows, in canonical order).
    pub fn scan(&self) -> impl Iterator<Item = &Arc<Tuple>> {
        self.rows.values().map(|r| &r.tuple)
    }

    /// Whether the table's declared primary key is a prefix of `cols`, in
    /// which case a probe over `cols` identifies at most one row and can be
    /// served from the primary `rows` map with no secondary index at all.
    fn primary_serves(&self, cols: &[usize]) -> bool {
        !self.key.is_empty()
            && cols.len() >= self.key.len()
            && cols[..self.key.len()] == self.key[..]
    }

    /// Probes for the rows whose projection at `cols` equals `key`, yielding
    /// them in the **same canonical order** as [`Table::scan`] (the
    /// determinism contract of indexed evaluation).  Served from the primary
    /// map when the declared key is a prefix of `cols` (at most one match),
    /// from the maintained secondary index over exactly `cols` otherwise.
    /// Returns `None` when neither can serve — the caller falls back to a
    /// scan.
    pub fn probe(&self, cols: &[usize], key: &[Value]) -> Option<ProbeIter<'_>> {
        if key.len() != cols.len() {
            // A malformed key can never have been built from these columns;
            // make the misuse a defined scan fallback rather than a panic.
            return None;
        }
        if self.primary_serves(cols) {
            let row = self.rows.get(&key[..self.key.len()]).filter(|row| {
                // Verify the probed columns beyond the primary key.
                cols[self.key.len()..]
                    .iter()
                    .zip(&key[self.key.len()..])
                    .all(|(&c, v)| match c {
                        0 => Value::Node(row.tuple.location) == *v,
                        c => row.tuple.values.get(c - 1) == Some(v),
                    })
            });
            return Some(ProbeIter(ProbeInner::One(row.map(|r| &r.tuple))));
        }
        let index = self.indexes.iter().find(|ix| ix.cols == cols)?;
        Some(ProbeIter(ProbeInner::Postings {
            rows: &self.rows,
            keys: index.postings.get(key).map(|set| set.iter()),
        }))
    }

    /// Whether a probe over exactly `cols` is answerable without a scan
    /// (primary-key-served or via a maintained secondary index).
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.primary_serves(cols) || self.indexes.iter().any(|ix| ix.cols == cols)
    }

    /// Collects the visible tuples as shared handles (sorted by tuple
    /// content for determinism), without deep-copying attribute vectors.
    pub fn tuples_shared(&self) -> Vec<Arc<Tuple>> {
        let mut out: Vec<Arc<Tuple>> = self.scan().cloned().collect();
        out.sort();
        out
    }

    #[cfg(test)]
    fn secondary_index_count(&self) -> usize {
        self.indexes.len()
    }

    #[cfg(test)]
    fn index_is_consistent(&self) -> bool {
        self.indexes.iter().all(|ix| {
            // Every row appears under exactly its projection, and every
            // posting points at a live row with that projection.
            let mut expected: BTreeMap<Vec<Value>, BTreeSet<Vec<Value>>> = BTreeMap::new();
            for (row_key, row) in &self.rows {
                if let Some(p) = ix.project(&row.tuple) {
                    expected.entry(p).or_default().insert(row_key.clone());
                }
            }
            expected == ix.postings
        })
    }
}

/// Iterator over the rows matching one probe, in canonical scan order.
#[derive(Debug)]
pub struct ProbeIter<'a>(ProbeInner<'a>);

#[derive(Debug)]
enum ProbeInner<'a> {
    /// A primary-key-served probe: at most one row, already verified.
    One(Option<&'a Arc<Tuple>>),
    /// A secondary-index probe: walk the posting set's primary row keys.
    Postings {
        /// The table's primary row map.
        rows: &'a BTreeMap<Vec<Value>, Row>,
        /// The matching posting set (`None` when the key has no postings).
        keys: Option<std::collections::btree_set::Iter<'a, Vec<Value>>>,
    },
}

impl<'a> Iterator for ProbeIter<'a> {
    type Item = &'a Arc<Tuple>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.0 {
            ProbeInner::One(row) => row.take(),
            ProbeInner::Postings { rows, keys } => {
                let keys = keys.as_mut()?;
                for key in keys {
                    if let Some(row) = rows.get(key) {
                        return Some(&row.tuple);
                    }
                }
                None
            }
        }
    }
}

/// Cold-table spill bookkeeping: which `(node, relation)` tables have been
/// evicted to disk, and where.
#[derive(Debug)]
struct SpillState {
    /// Directory holding `n<node>_<relation>.tbl` files.
    dir: PathBuf,
    /// In-memory row budget across this store's tables.
    budget_rows: usize,
    /// Evicted tables: key → (spill file, visible row count).
    spilled: HashMap<(NodeId, RelId), (PathBuf, usize)>,
    /// Tables evicted / faulted back in since spill was enabled.
    spills: u64,
    faults: u64,
    /// Reads served straight from spill files by `&self` inspection APIs
    /// (atomic because those APIs take shared references).
    cold_reads: AtomicU64,
}

impl Clone for SpillState {
    fn clone(&self) -> Self {
        SpillState {
            dir: self.dir.clone(),
            budget_rows: self.budget_rows,
            spilled: self.spilled.clone(),
            spills: self.spills,
            faults: self.faults,
            cold_reads: AtomicU64::new(self.cold_reads.load(Ordering::Relaxed)),
        }
    }
}

impl SpillState {
    fn file_for(&self, node: NodeId, relation: RelId) -> PathBuf {
        self.dir.join(format!("n{node}_{relation}.tbl"))
    }
}

/// A helper collection mapping `(node, relation)` to its [`Table`], with
/// lazily-created tables.
///
/// When persistence is attached the store also carries the **journal** — the
/// logical operations applied since the last barrier flush, which the engine
/// drains into the WAL — and, when a memory budget is configured, the
/// **spill state** tracking which cold tables currently live on disk in
/// snapshot form rather than in memory.
#[derive(Debug, Default, Clone)]
pub struct TableStore {
    tables: HashMap<(NodeId, RelId), Table>,
    /// Key declarations by relation.
    keys: HashMap<RelId, Vec<usize>>,
    /// Secondary-index demands by relation (from the compiled join plans);
    /// every lazily-created table of that relation maintains them.
    index_demands: HashMap<RelId, Vec<Vec<usize>>>,
    /// Operations journaled since the last barrier flush (empty and never
    /// pushed to unless `journaling` is on).
    journal: Vec<WalOp>,
    journaling: bool,
    spill: Option<SpillState>,
}

impl TableStore {
    /// Creates an empty store with the given key declarations and no
    /// secondary indexes.
    pub fn new(keys: HashMap<RelId, Vec<usize>>) -> Self {
        Self::with_indexes(keys, HashMap::new())
    }

    /// Creates an empty store with key declarations and per-relation
    /// secondary-index demands.
    pub fn with_indexes(
        keys: HashMap<RelId, Vec<usize>>,
        index_demands: HashMap<RelId, Vec<Vec<usize>>>,
    ) -> Self {
        TableStore {
            tables: HashMap::new(),
            keys,
            index_demands,
            journal: Vec::new(),
            journaling: false,
            spill: None,
        }
    }

    /// The declared primary-key positions of `relation` (empty = whole-tuple
    /// set semantics).  This is the order `scan()` — and therefore `probe()`
    /// — enumerates rows in.
    pub fn key_spec(&self, relation: RelId) -> &[usize] {
        self.keys.get(&relation).map_or(&[], Vec::as_slice)
    }

    /// Returns the table for `(node, relation)`, creating it if necessary
    /// (and faulting it back in first if it was spilled — every mutation
    /// path goes through here, so spilled tables can never be written
    /// around).
    pub fn table_mut(&mut self, node: NodeId, relation: RelId) -> &mut Table {
        if self
            .spill
            .as_ref()
            .is_some_and(|s| s.spilled.contains_key(&(node, relation)))
        {
            self.fault_in(node, relation);
        }
        match self.tables.entry((node, relation)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let key_spec = self.keys.get(&relation).cloned().unwrap_or_default();
                let demands = self
                    .index_demands
                    .get(&relation)
                    .cloned()
                    .unwrap_or_default();
                e.insert(Table::new(relation, key_spec).with_indexes(demands))
            }
        }
    }

    /// Returns the table for `(node, relation)` if it exists *in memory*.
    ///
    /// Evaluation reads go through here; a spilled table would silently look
    /// empty, so the engine faults in every table at a delta's node before
    /// processing it (NDlog localization guarantees rule bodies only read
    /// tables at that node).  The debug assertion catches any evaluation
    /// path that missed its fault-in.
    pub fn table(&self, node: NodeId, relation: RelId) -> Option<&Table> {
        debug_assert!(
            !self
                .spill
                .as_ref()
                .is_some_and(|s| s.spilled.contains_key(&(node, relation))),
            "evaluation read of spilled table ({node}, {relation}) without fault-in"
        );
        self.tables.get(&(node, relation))
    }

    /// All visible tuples of `relation` at `node` as shared handles.  Serves
    /// spilled tables directly from their spill file without faulting them
    /// back into memory (a *cold read*).
    pub fn tuples_shared(&self, node: NodeId, relation: RelId) -> Vec<Arc<Tuple>> {
        if let Some(table) = self.tables.get(&(node, relation)) {
            return table.tuples_shared();
        }
        if let Some(dump) = self.cold_dump(node, relation) {
            let mut out: Vec<Arc<Tuple>> = dump.rows.into_iter().map(|(t, _)| t).collect();
            out.sort();
            return out;
        }
        Vec::new()
    }

    /// All visible tuples of `relation` across every node, as shared handles
    /// (sorted by tuple content for determinism).  Spilled tables are served
    /// by cold reads.
    pub fn tuples_everywhere_shared(&self, relation: RelId) -> Vec<Arc<Tuple>> {
        let mut out: Vec<Arc<Tuple>> = self
            .tables
            .iter()
            .filter(|((_, r), _)| *r == relation)
            .flat_map(|(_, t)| t.scan().cloned())
            .collect();
        if let Some(spill) = &self.spill {
            for &(node, rel) in spill.spilled.keys() {
                if rel == relation {
                    if let Some(dump) = self.cold_dump(node, rel) {
                        out.extend(dump.rows.into_iter().map(|(t, _)| t));
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// The derivation count of `tuple` at `node` (0 if absent), serving
    /// spilled tables by cold read.
    pub fn derivation_count(&self, node: NodeId, tuple: &Tuple) -> usize {
        if let Some(table) = self.tables.get(&(node, tuple.relation)) {
            return table.count(tuple);
        }
        match self.cold_dump(node, tuple.relation) {
            Some(dump) => dump
                .rows
                .iter()
                .find(|(t, _)| **t == *tuple)
                .map_or(0, |(_, c)| *c as usize),
            None => 0,
        }
    }

    /// Total number of visible tuples across all tables, including spilled
    /// ones (their row counts are tracked without touching disk).
    pub fn total_tuples(&self) -> usize {
        let in_memory: usize = self.tables.values().map(Table::len).sum();
        let spilled: usize = self
            .spill
            .as_ref()
            .map_or(0, |s| s.spilled.values().map(|(_, rows)| rows).sum());
        in_memory + spilled
    }

    // ------------------------------------------------------------------
    // Journal (persistence)
    // ------------------------------------------------------------------

    /// Turns operation journaling on or off.  Off (the default) makes every
    /// `journal_*` call a no-op, so the in-memory path pays one branch.
    pub fn set_journaling(&mut self, on: bool) {
        self.journaling = on;
    }

    /// Drains the operations journaled since the last call.
    pub fn take_journal(&mut self) -> Vec<WalOp> {
        std::mem::take(&mut self.journal)
    }

    /// Journals one table-mutation intent (the arguments of
    /// `insert_shared`/`delete`, recorded *before* the mutation — replaying
    /// intents through identical table code reproduces every effect).
    pub fn journal_tuple(&mut self, node: NodeId, insert: bool, tuple: &Arc<Tuple>) {
        if self.journaling {
            self.journal.push(WalOp::Tuple {
                node,
                insert,
                tuple: Arc::clone(tuple),
            });
        }
    }

    /// Journals one aggregate-provenance map mutation (see
    /// [`WalOp::AggProv`]).
    pub fn journal_agg(
        &mut self,
        install: bool,
        node: NodeId,
        relation: RelId,
        group: &[Value],
        tuples: Option<(&Arc<Tuple>, &Arc<Tuple>)>,
    ) {
        if self.journaling {
            self.journal.push(WalOp::AggProv {
                install,
                node,
                relation,
                group: group.to_vec(),
                tuples: tuples.map(|(p, e)| (Arc::clone(p), Arc::clone(e))),
            });
        }
    }

    // ------------------------------------------------------------------
    // Cold-table spill
    // ------------------------------------------------------------------

    /// Enables cold-table spill: when the total in-memory row count exceeds
    /// `budget_rows` at a barrier boundary, the largest tables are evicted
    /// to snapshot-format files under `dir`.
    pub fn enable_spill(&mut self, dir: PathBuf, budget_rows: usize) {
        self.spill = Some(SpillState {
            dir,
            budget_rows,
            spilled: HashMap::new(),
            spills: 0,
            faults: 0,
            cold_reads: AtomicU64::new(0),
        });
    }

    /// `(tables spilled, tables faulted, cold reads)` since spill was
    /// enabled.
    pub fn spill_counters(&self) -> (u64, u64, u64) {
        self.spill.as_ref().map_or((0, 0, 0), |s| {
            (s.spills, s.faults, s.cold_reads.load(Ordering::Relaxed))
        })
    }

    /// Faults every spilled table at `node` back into memory.  The engine
    /// calls this before processing a delta at `node`; rule bodies are
    /// localized, so this is the complete set of tables evaluation can read.
    pub fn fault_in_node(&mut self, node: NodeId) {
        let Some(spill) = &self.spill else {
            return;
        };
        let keys: Vec<(NodeId, RelId)> = spill
            .spilled
            .keys()
            .filter(|(n, _)| *n == node)
            .copied()
            .collect();
        for (n, rel) in keys {
            self.fault_in(n, rel);
        }
    }

    /// Loads one spilled table back and deletes its spill file.  The rows
    /// are restored in dump order with their original counts, so the
    /// rebuilt table (rows and secondary indexes) is structurally identical
    /// to the evicted one.  Storage failures here are fatal: the evicted
    /// rows exist nowhere else in memory.
    fn fault_in(&mut self, node: NodeId, relation: RelId) {
        let Some(spill) = &mut self.spill else {
            return;
        };
        let Some((path, _)) = spill.spilled.remove(&(node, relation)) else {
            return;
        };
        let dump = exspan_store::snapshot::load_spill(&path)
            .unwrap_or_else(|e| panic!("cannot fault in spilled table {path:?}: {e}"));
        spill.faults += 1;
        let _ = std::fs::remove_file(&path);
        let table = self.table_mut(node, relation);
        for (tuple, count) in dump.rows {
            table.restore(tuple, count);
        }
    }

    /// Serves a spilled table's contents directly from its file, without
    /// mutating the store (inspection APIs only).
    fn cold_dump(&self, node: NodeId, relation: RelId) -> Option<TableDump> {
        let spill = self.spill.as_ref()?;
        let (path, _) = spill.spilled.get(&(node, relation))?;
        let dump = exspan_store::snapshot::load_spill(path)
            .unwrap_or_else(|e| panic!("cannot read spilled table {path:?}: {e}"));
        spill.cold_reads.fetch_add(1, Ordering::Relaxed);
        Some(dump)
    }

    /// Evicts the largest tables until the in-memory row count fits the
    /// budget (no-op without a configured budget).  Called by the engine at
    /// barrier boundaries, when no evaluation is in flight.  Eviction order
    /// is deterministic: largest first, ties by `(node, relation name)`.
    pub fn enforce_budget(&mut self) {
        let Some(spill) = &self.spill else {
            return;
        };
        let budget = spill.budget_rows;
        let mut in_memory: usize = self.tables.values().map(Table::len).sum();
        while in_memory > budget {
            let victim = self
                .tables
                .iter()
                .filter(|(_, t)| !t.is_empty())
                .max_by(|((n1, r1), t1), ((n2, r2), t2)| {
                    t1.len()
                        .cmp(&t2.len())
                        // Reverse the key order so `max_by` picks the
                        // *smallest* (node, name) among equally-large tables.
                        .then_with(|| (n2, r2.as_str()).cmp(&(n1, r1.as_str())))
                })
                .map(|(k, _)| *k);
            let Some((node, relation)) = victim else {
                break;
            };
            let table = self
                .tables
                .remove(&(node, relation))
                .expect("victim exists");
            in_memory -= table.len();
            let dump = TableDump {
                node,
                relation,
                rows: table
                    .rows_with_counts()
                    .map(|(t, c)| (Arc::clone(t), c))
                    .collect(),
            };
            let spill = self.spill.as_mut().expect("spill enabled");
            let path = spill.file_for(node, relation);
            exspan_store::snapshot::write_spill(&path, &dump)
                .unwrap_or_else(|e| panic!("cannot spill table to {path:?}: {e}"));
            spill
                .spilled
                .insert((node, relation), (path, dump.rows.len()));
            spill.spills += 1;
        }
    }

    /// Dumps every table — in memory or spilled — in canonical order:
    /// sorted by `(node, relation name)`, rows in scan order with their
    /// derivation counts.  This is the table section of a snapshot and the
    /// input to the engine's state digest; its bytes are independent of
    /// shard count, spill status, and execution interleaving.  Empty tables
    /// are skipped (a never-written and a written-then-emptied table are
    /// the same logical state).
    pub fn dump(&self) -> Vec<TableDump> {
        let mut dumps: Vec<TableDump> = self
            .tables
            .iter()
            .filter(|(_, t)| !t.is_empty())
            .map(|(&(node, relation), table)| TableDump {
                node,
                relation,
                rows: table
                    .rows_with_counts()
                    .map(|(t, c)| (Arc::clone(t), c))
                    .collect(),
            })
            .collect();
        if let Some(spill) = &self.spill {
            for &(node, rel) in spill.spilled.keys() {
                if let Some(dump) = self.cold_dump(node, rel) {
                    if !dump.rows.is_empty() {
                        dumps.push(dump);
                    }
                }
            }
        }
        dumps.sort_by(|a, b| (a.node, a.relation.as_str()).cmp(&(b.node, b.relation.as_str())));
        dumps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exspan_types::Symbol;

    fn path_cost(loc: NodeId, d: NodeId, c: i64) -> Tuple {
        Tuple::new("pathCost", loc, vec![Value::Node(d), Value::Int(c)])
    }

    fn best(loc: NodeId, d: NodeId, c: i64) -> Tuple {
        Tuple::new("bestPathCost", loc, vec![Value::Node(d), Value::Int(c)])
    }

    #[test]
    fn set_semantics_counts_derivations() {
        let mut t = Table::set_semantics("pathCost");
        let p = path_cost(0, 2, 5);
        assert_eq!(t.insert(&p), InsertEffect::Added);
        assert_eq!(t.insert(&p), InsertEffect::Duplicate);
        assert_eq!(t.count(&p), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.delete(&p), DeleteEffect::Decremented);
        assert!(t.contains(&p));
        assert_eq!(t.delete(&p), DeleteEffect::Removed);
        assert!(!t.contains(&p));
        assert_eq!(t.delete(&p), DeleteEffect::Missing);
    }

    #[test]
    fn shared_insert_shares_the_allocation() {
        let mut t = Table::set_semantics("pathCost");
        let p = Arc::new(path_cost(0, 2, 5));
        assert_eq!(t.insert_shared(&p), InsertEffect::Added);
        // The stored row is the same allocation, not a deep copy.
        let stored = t.scan().next().unwrap();
        assert!(Arc::ptr_eq(stored, &p));
    }

    #[test]
    fn distinct_tuples_coexist_under_set_semantics() {
        let mut t = Table::set_semantics("pathCost");
        t.insert(&path_cost(0, 2, 5));
        t.insert(&path_cost(0, 2, 7));
        assert_eq!(t.len(), 2);
        assert!(t.contains(&path_cost(0, 2, 5)));
        assert!(t.contains(&path_cost(0, 2, 7)));
    }

    #[test]
    fn keyed_table_replaces_row_with_same_key() {
        // bestPathCost(@S,D,C) keyed on (S, D) = positions (0, 1).
        let mut t = Table::new("bestPathCost", vec![0, 1]);
        assert_eq!(t.insert(&best(0, 2, 5)), InsertEffect::Added);
        let eff = t.insert(&best(0, 2, 4));
        assert_eq!(eff, InsertEffect::Replaced(Arc::new(best(0, 2, 5))));
        assert_eq!(t.len(), 1);
        assert!(t.contains(&best(0, 2, 4)));
        assert!(!t.contains(&best(0, 2, 5)));
        // Different key coexists.
        assert_eq!(t.insert(&best(0, 3, 9)), InsertEffect::Added);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn keyed_rows_are_idempotent_under_reinsertion() {
        let mut t = Table::new("bestPathCost", vec![0, 1]);
        t.insert(&best(0, 2, 5));
        assert_eq!(t.insert(&best(0, 2, 5)), InsertEffect::Duplicate);
        assert_eq!(
            t.count(&best(0, 2, 5)),
            1,
            "keyed rows do not count duplicates"
        );
        assert_eq!(t.delete(&best(0, 2, 5)), DeleteEffect::Removed);
        assert!(t.is_empty());
    }

    #[test]
    fn stale_delete_of_replaced_row_is_ignored() {
        let mut t = Table::new("bestPathCost", vec![0, 1]);
        t.insert(&best(0, 2, 5));
        t.insert(&best(0, 2, 4));
        // A delayed cascade tries to delete the old version.
        assert_eq!(t.delete(&best(0, 2, 5)), DeleteEffect::Missing);
        assert!(t.contains(&best(0, 2, 4)));
    }

    #[test]
    fn scan_and_tuples_are_deterministic() {
        let mut t = Table::set_semantics("pathCost");
        t.insert(&path_cost(0, 3, 1));
        t.insert(&path_cost(0, 2, 5));
        let tuples = t.tuples_shared();
        assert_eq!(tuples.len(), 2);
        let mut again = t.tuples_shared();
        again.sort();
        assert_eq!(tuples, again);
    }

    #[test]
    fn probe_yields_candidates_in_scan_order() {
        let mut t = Table::set_semantics("pathCost").with_indexes(vec![vec![0, 1]]);
        // Insert destinations out of order, two costs per destination.
        for (d, c) in [(3, 9), (2, 5), (3, 1), (2, 7), (4, 2)] {
            t.insert(&path_cost(0, d, c));
        }
        let probed: Vec<Tuple> = t
            .probe(&[0, 1], &[Value::Node(0), Value::Node(3)])
            .expect("index exists")
            .map(|a| (**a).clone())
            .collect();
        // Exactly the rows a scan-and-filter would yield, in scan order.
        let scanned: Vec<Tuple> = t
            .scan()
            .filter(|a| a.values[0] == Value::Node(3))
            .map(|a| (**a).clone())
            .collect();
        assert_eq!(probed, scanned);
        assert_eq!(probed.len(), 2);
        // Missing keys and missing indexes behave distinctly.
        assert_eq!(
            t.probe(&[0, 1], &[Value::Node(0), Value::Node(9)])
                .expect("index exists")
                .count(),
            0
        );
        assert!(t.probe(&[0, 2], &[Value::Node(0), Value::Int(5)]).is_none());
        assert!(t.has_index(&[0, 1]) && !t.has_index(&[0, 2]));
    }

    #[test]
    fn primary_key_prefix_probes_are_served_without_an_index() {
        // bestPathCost keyed on (loc, D): probes over (loc, D) and
        // (loc, D, C) resolve through the primary map — demanding an index
        // there must be a no-op.
        let mut t =
            Table::new("bestPathCost", vec![0, 1]).with_indexes(vec![vec![0, 1], vec![0, 1, 2]]);
        t.insert(&best(0, 2, 5));
        t.insert(&best(0, 3, 9));
        assert!(t.has_index(&[0, 1]) && t.has_index(&[0, 1, 2]));
        let hit: Vec<_> = t
            .probe(&[0, 1], &[Value::Node(0), Value::Node(2)])
            .unwrap()
            .collect();
        assert_eq!(hit.len(), 1);
        assert_eq!(*hit[0].as_ref(), best(0, 2, 5));
        // The extended columns beyond the key are verified, not assumed.
        assert_eq!(
            t.probe(&[0, 1, 2], &[Value::Node(0), Value::Node(2), Value::Int(5)])
                .unwrap()
                .count(),
            1
        );
        assert_eq!(
            t.probe(&[0, 1, 2], &[Value::Node(0), Value::Node(2), Value::Int(7)])
                .unwrap()
                .count(),
            0
        );
        assert_eq!(
            t.probe(&[0, 1], &[Value::Node(0), Value::Node(9)])
                .unwrap()
                .count(),
            0
        );
        // No secondary index was materialized for either demand.
        assert!(t.index_is_consistent());
        assert_eq!(t.secondary_index_count(), 0);
    }

    #[test]
    fn index_stays_consistent_under_keyed_replacement() {
        // bestPathCost keyed on (loc, D); index over the non-key cost column.
        let mut t = Table::new("bestPathCost", vec![0, 1]).with_indexes(vec![vec![0, 2]]);
        t.insert(&best(0, 2, 5));
        t.insert(&best(0, 3, 5));
        assert!(t.index_is_consistent());
        assert_eq!(
            t.probe(&[0, 2], &[Value::Node(0), Value::Int(5)])
                .unwrap()
                .count(),
            2
        );
        // Replacing the keyed row must move it to the new cost's posting.
        assert!(matches!(
            t.insert(&best(0, 2, 4)),
            InsertEffect::Replaced(_)
        ));
        assert!(t.index_is_consistent());
        assert_eq!(
            t.probe(&[0, 2], &[Value::Node(0), Value::Int(5)])
                .unwrap()
                .count(),
            1
        );
        assert_eq!(
            t.probe(&[0, 2], &[Value::Node(0), Value::Int(4)])
                .unwrap()
                .count(),
            1
        );
    }

    #[test]
    fn index_stays_consistent_under_set_semantics_deletion() {
        let mut t = Table::set_semantics("pathCost").with_indexes(vec![vec![0, 1]]);
        let p = path_cost(0, 2, 5);
        t.insert(&p);
        t.insert(&p); // second derivation
        assert_eq!(t.delete(&p), DeleteEffect::Decremented);
        // Still visible: the posting must survive the decrement.
        assert!(t.index_is_consistent());
        assert_eq!(
            t.probe(&[0, 1], &[Value::Node(0), Value::Node(2)])
                .unwrap()
                .count(),
            1
        );
        assert_eq!(t.delete(&p), DeleteEffect::Removed);
        assert!(t.index_is_consistent());
        assert_eq!(
            t.probe(&[0, 1], &[Value::Node(0), Value::Node(2)])
                .unwrap()
                .count(),
            0
        );
    }

    #[test]
    fn add_index_backfills_existing_rows() {
        let mut t = Table::set_semantics("pathCost");
        t.insert(&path_cost(0, 2, 5));
        t.insert(&path_cost(0, 3, 1));
        t.add_index(vec![0, 1]);
        assert!(t.index_is_consistent());
        assert_eq!(
            t.probe(&[0, 1], &[Value::Node(0), Value::Node(3)])
                .unwrap()
                .count(),
            1
        );
        // Re-adding the same column set is a no-op; empty sets are rejected.
        t.add_index(vec![0, 1]);
        t.add_index(vec![]);
        assert!(t.index_is_consistent());
    }

    #[test]
    fn tuples_shared_returns_sorted_visible_rows() {
        let mut t = Table::set_semantics("pathCost");
        t.insert(&path_cost(0, 3, 1));
        t.insert(&path_cost(0, 2, 5));
        let rows: Vec<Tuple> = t.tuples_shared().iter().map(|a| (**a).clone()).collect();
        assert_eq!(rows, vec![path_cost(0, 2, 5), path_cost(0, 3, 1)]);
    }

    #[test]
    fn table_store_lazily_creates_with_declared_keys() {
        let best_rel = Symbol::intern("bestPathCost");
        let pc_rel = Symbol::intern("pathCost");
        let mut keys = HashMap::new();
        keys.insert(best_rel, vec![0usize, 1]);
        let mut store = TableStore::new(keys);
        store.table_mut(0, best_rel).insert(&best(0, 2, 5));
        store.table_mut(0, best_rel).insert(&best(0, 2, 3));
        assert_eq!(
            store.tuples_shared(0, best_rel),
            vec![Arc::new(best(0, 2, 3))]
        );
        // Undeclared relations default to set semantics.
        store.table_mut(1, pc_rel).insert(&path_cost(1, 2, 5));
        store.table_mut(1, pc_rel).insert(&path_cost(1, 2, 7));
        assert_eq!(store.tuples_shared(1, pc_rel).len(), 2);
        assert_eq!(store.total_tuples(), 3);
        assert_eq!(store.tuples_everywhere_shared(pc_rel).len(), 2);
        assert!(store.table(9, pc_rel).is_none());
        assert!(store.tuples_shared(9, pc_rel).is_empty());
    }
}
