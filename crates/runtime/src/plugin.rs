//! Engine extension hooks.
//!
//! The engine itself knows nothing about provenance.  *Value-based*
//! provenance (paper §3, "Distribution") — where every transmitted tuple
//! carries its entire derivation history — is implemented by the provenance
//! layer as an [`AnnotationPolicy`] plugged into the engine: the policy
//! observes every rule firing and decides how many extra bytes to attach to
//! each transmitted tuple.  Centralized provenance can similarly be modelled
//! by charging upload traffic from the policy.

use exspan_types::{NodeId, Tuple};

/// Observes derivations and charges per-message annotation bytes.
///
/// All methods have empty default implementations so simple policies only
/// override what they need.
pub trait AnnotationPolicy {
    /// Called when a base tuple is inserted (`insert = true`) or deleted at
    /// `node` by the experiment driver.
    fn on_base(&mut self, node: NodeId, tuple: &Tuple, insert: bool) {
        let _ = (node, tuple, insert);
    }

    /// Called on every rule firing: `rule` fired at `node` with the grounded
    /// `inputs` producing `output`.  `insert` is `false` for deletion deltas
    /// cascading through the rule.
    fn on_derivation(
        &mut self,
        node: NodeId,
        rule: &str,
        inputs: &[Tuple],
        output: &Tuple,
        insert: bool,
    ) {
        let _ = (node, rule, inputs, output, insert);
    }

    /// Returns the number of extra annotation bytes to attach to `tuple` when
    /// it is transmitted from `from` to `to`.
    fn annotation_bytes(&mut self, from: NodeId, to: NodeId, tuple: &Tuple) -> usize {
        let _ = (from, to, tuple);
        0
    }
}

/// A policy that attaches nothing (the "No Prov." baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoAnnotation;

impl AnnotationPolicy for NoAnnotation {}

#[cfg(test)]
mod tests {
    use super::*;
    use exspan_types::Value;

    #[test]
    fn default_policy_is_inert() {
        let mut p = NoAnnotation;
        let t = Tuple::new("link", 0, vec![Value::Node(1), Value::Int(1)]);
        p.on_base(0, &t, true);
        p.on_derivation(0, "sp1", std::slice::from_ref(&t), &t, true);
        assert_eq!(p.annotation_bytes(0, 1, &t), 0);
    }
}
