//! Engine extension hooks.
//!
//! The engine itself knows nothing about provenance.  *Value-based*
//! provenance (paper §3, "Distribution") — where every transmitted tuple
//! carries its entire derivation history — is implemented by the provenance
//! layer as an [`AnnotationPolicy`] plugged into the engine: the policy
//! observes every rule firing and decides how many extra bytes to attach to
//! each transmitted tuple.  Centralized provenance can similarly be modelled
//! by charging upload traffic from the policy.
//!
//! Annotations travel *with* the deltas, mirroring the paper's value-based
//! distribution model: [`AnnotationPolicy::on_derivation`] returns an opaque
//! [`AnnotationToken`] that the engine ships inside the delta message, and
//! [`AnnotationPolicy::on_arrival`] merges it into the policy's state for the
//! *receiving* node when the delta is applied there.  Keeping annotation
//! state per `(node, tuple)` — rather than in one global map mutated in
//! arbitrary firing order — is what makes value-based provenance
//! deterministic under the sharded runtime: every update to a node's
//! annotations happens in that node's (deterministic) event order.

use crate::engine::Engine;
use exspan_types::{NodeId, Tuple};
use std::sync::Arc;

/// Receives event tuples the engine has no rules for (the engine's
/// [`crate::engine::Step::External`] events) during a driven run.
///
/// This is the hook through which higher protocol layers — the distributed
/// provenance *query* protocol of `exspan-core` — participate in the
/// engine's single simulated clock: [`Engine::run_until_interactive`] calls
/// the sink for every external tuple *in deterministic event order*, with the
/// engine handed back mutably so the sink can reply (send tuples, schedule
/// deltas) at the exact simulated time the event occurred.  Protocol
/// maintenance deltas, churn deltas and query messages therefore interleave
/// on one event queue instead of the query layer monopolizing the engine.
pub trait ExternalSink {
    /// Called for every surfaced external tuple.  `time` is the simulated
    /// arrival time; `insert` is the delta's polarity.  The tuple is shared
    /// with the delta that carried it (clone the `Arc` to retain it).
    fn on_external(
        &mut self,
        engine: &mut Engine,
        node: NodeId,
        tuple: Arc<Tuple>,
        time: f64,
        insert: bool,
    );
}

/// Opaque handle to an annotation shipped inside a delta message.  The
/// meaning of the token is private to the policy that produced it (the
/// value-based policy uses BDD node handles).
pub type AnnotationToken = u64;

/// Observes derivations and charges per-message annotation bytes.
///
/// All methods have empty default implementations so simple policies only
/// override what they need.  Policies must be [`Send`]: the sharded runtime
/// shares one policy between worker threads behind a mutex.
pub trait AnnotationPolicy: Send {
    /// Called when a base tuple is inserted (`insert = true`) or deleted at
    /// `node` by the experiment driver.
    fn on_base(&mut self, node: NodeId, tuple: &Tuple, insert: bool) {
        let _ = (node, tuple, insert);
    }

    /// Called on every rule firing: `rule` fired at `node` with the grounded
    /// `inputs` producing `output`.  `insert` is `false` for deletion deltas
    /// cascading through the rule.  The inputs are the engine's shared table
    /// rows — policies read them without cloning tuple contents.
    ///
    /// The returned token is attached to the emitted delta and handed back to
    /// the policy at [`AnnotationPolicy::annotation_bytes`] (if the delta
    /// leaves the node) and [`AnnotationPolicy::on_arrival`] (when it is
    /// applied at its destination).
    fn on_derivation(
        &mut self,
        node: NodeId,
        rule: &str,
        inputs: &[Arc<Tuple>],
        output: &Tuple,
        insert: bool,
    ) -> Option<AnnotationToken> {
        let _ = (node, rule, inputs, output, insert);
        None
    }

    /// Returns the number of extra annotation bytes to attach to `tuple` when
    /// it is transmitted from `from` to `to` carrying `token`.
    fn annotation_bytes(
        &mut self,
        from: NodeId,
        to: NodeId,
        tuple: &Tuple,
        token: Option<AnnotationToken>,
    ) -> usize {
        let _ = (from, to, tuple, token);
        0
    }

    /// Returns the annotation bytes for the same transmission under the
    /// *compressed* accounting model ([`exspan_types::compress`]).  Only
    /// consulted when the engine runs with
    /// [`crate::engine::EngineConfig::track_compressed`] enabled, and always
    /// *after* [`AnnotationPolicy::annotation_bytes`] for the same delta —
    /// `uncompressed` hands the already-charged flat size over so neither
    /// method is invoked twice.  The default charges the uncompressed size:
    /// a policy without a compressed encoding reports zero savings rather
    /// than wrong bytes.
    fn annotation_bytes_compressed(
        &mut self,
        from: NodeId,
        to: NodeId,
        tuple: &Tuple,
        token: Option<AnnotationToken>,
        uncompressed: usize,
    ) -> usize {
        let _ = (from, to, tuple, token);
        uncompressed
    }

    /// Called when a delta for `tuple` is applied at `node`.  For insertions
    /// `token` is the annotation shipped with the delta (if any).  For
    /// deletions `removed` reports whether the tuple actually left the
    /// node's visible state (its last derivation disappeared), so policies
    /// can keep annotations of tuples that remain visible through other
    /// derivations.
    fn on_arrival(
        &mut self,
        node: NodeId,
        tuple: &Tuple,
        token: Option<AnnotationToken>,
        insert: bool,
        removed: bool,
    ) {
        let _ = (node, tuple, token, insert, removed);
    }
}

/// A policy that attaches nothing (the "No Prov." baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoAnnotation;

impl AnnotationPolicy for NoAnnotation {}

#[cfg(test)]
mod tests {
    use super::*;
    use exspan_types::Value;

    #[test]
    fn default_policy_is_inert() {
        let mut p = NoAnnotation;
        let t = Arc::new(Tuple::new("link", 0, vec![Value::Node(1), Value::Int(1)]));
        p.on_base(0, &t, true);
        let token = p.on_derivation(0, "sp1", std::slice::from_ref(&t), &t, true);
        assert!(token.is_none());
        assert_eq!(p.annotation_bytes(0, 1, &t, token), 0);
        p.on_arrival(0, &t, token, true, false);
    }
}
