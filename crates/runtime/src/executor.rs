//! Executors: how simulated time is allowed to advance.
//!
//! The engine itself is a pure discrete-event machine — [`crate::Engine`]
//! processes events in deterministic `(time, source, seq)` order up to
//! whatever simulated-time limit its caller passes.  What *paces* those calls
//! is a policy decision that historically had exactly one answer ("as fast as
//! possible, to the requested horizon"), baked into every driver.  The
//! [`Executor`] trait makes the pacing explicit so the same shard core can
//! run under two very different regimes:
//!
//! * [`SimClock`] — the deterministic simulator clock used by the figure
//!   experiments, the tests and the byte-identical baselines.  The horizon
//!   *is* the caller's target: one pump covers the whole request, and the
//!   executor never waits.  Driving a deployment through `SimClock` is
//!   bit-identical to the historical direct `run_until` path by
//!   construction (it performs the same single call).
//! * [`WallClock`] — a real-time executor for live service front-ends
//!   (`exspan-serve`).  Simulated time accrues at a configurable rate
//!   relative to a wall-clock epoch; each pump may only advance the engine
//!   to the simulated time that real time has "paid for" so far, and
//!   reaching a target beyond the accrued horizon requires waiting for the
//!   wall clock.  The loop is tokio-free: waiting is a plain bounded
//!   `thread::sleep`.
//!
//! Drivers generalize over the trait with the pump-loop shape implemented by
//! `exspan_core::Deployment::run_with`:
//!
//! ```text
//! loop {
//!     let h = executor.horizon(target);
//!     engine.run_until(h);                 // deterministic event processing
//!     if h >= target || !executor.is_realtime() { break; }
//!     executor.wait(target);               // let real time accrue
//! }
//! ```
//!
//! Determinism is unaffected by the split: an executor only chooses *which
//! horizon* to pass to the engine, never how events are ordered below it, and
//! `SimClock` chooses exactly the horizons the pre-trait code passed.

use std::time::{Duration, Instant};

/// Paces how far simulated time may advance per engine pump.
///
/// Implementations must be [`Send`] so service front-ends can own an executor
/// on a dedicated worker thread.
pub trait Executor: Send {
    /// Short identifier used in reports and logs (`"sim"`, `"wall"`).
    fn name(&self) -> &'static str;

    /// The simulated time the engine may advance to right now, given that the
    /// caller ultimately wants to reach `target`.  Never exceeds `target`.
    fn horizon(&mut self, target: f64) -> f64;

    /// Whether this executor's horizon is coupled to real time.  When
    /// `false` (the [`SimClock`] case) a single pump to [`Executor::horizon`]
    /// covers the whole target and callers must not loop — looping would be
    /// harmless for the engine but pointless.
    fn is_realtime(&self) -> bool {
        false
    }

    /// Blocks until more simulated time has accrued toward `target`.
    /// Real-time executors sleep a bounded quantum; the deterministic
    /// executor never needs to wait and returns immediately.
    fn wait(&mut self, target: f64) {
        let _ = target;
    }
}

/// The deterministic simulator clock: simulated time is unconstrained by real
/// time, so every pump runs straight to the caller's target.
///
/// This is the executor behind all figure experiments and tests; driving a
/// deployment through it is byte-identical to the historical direct
/// `run_until` path.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimClock;

impl Executor for SimClock {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn horizon(&mut self, target: f64) -> f64 {
        target
    }
}

/// A real-time executor: simulated seconds accrue at [`WallClock::rate`]
/// per elapsed wall-clock second since the executor's epoch.
///
/// The engine may only ever process events whose simulated time the wall
/// clock has already paid for, which is what lets a live server interleave
/// query admission, churn and protocol maintenance at a human-observable
/// pace instead of racing the whole simulation to fixpoint on every pump.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
    /// Simulated time at the epoch (horizons are `origin + elapsed × rate`).
    origin: f64,
    /// Simulated seconds accrued per wall-clock second.
    rate: f64,
    /// Sleep quantum used by [`Executor::wait`].
    quantum: Duration,
}

impl WallClock {
    /// Default wait quantum: short enough that a service worker stays
    /// responsive, long enough not to busy-spin.
    pub const DEFAULT_QUANTUM: Duration = Duration::from_millis(1);

    /// Creates a wall-clock executor whose simulated clock starts at
    /// `origin` (usually the deployment's current `now()`) and advances
    /// `rate` simulated seconds per wall second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite — a stalled or
    /// inverted clock would never reach any horizon.
    pub fn starting_at(origin: f64, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "WallClock rate must be finite and > 0, got {rate}"
        );
        WallClock {
            epoch: Instant::now(),
            origin,
            rate,
            quantum: Self::DEFAULT_QUANTUM,
        }
    }

    /// Creates a wall-clock executor starting at simulated time 0 advancing
    /// in real time (one simulated second per wall second).
    pub fn realtime() -> Self {
        Self::starting_at(0.0, 1.0)
    }

    /// Replaces the sleep quantum used while waiting for time to accrue.
    pub fn with_quantum(mut self, quantum: Duration) -> Self {
        self.quantum = quantum;
        self
    }

    /// Simulated seconds accrued per wall-clock second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The simulated time the wall clock has paid for so far.
    pub fn accrued(&self) -> f64 {
        self.origin + self.epoch.elapsed().as_secs_f64() * self.rate
    }
}

impl Executor for WallClock {
    fn name(&self) -> &'static str {
        "wall"
    }

    fn horizon(&mut self, target: f64) -> f64 {
        self.accrued().min(target)
    }

    fn is_realtime(&self) -> bool {
        true
    }

    fn wait(&mut self, target: f64) {
        let deficit = target - self.accrued();
        if deficit <= 0.0 {
            return;
        }
        // Sleep the smaller of one quantum and the wall time the deficit
        // actually needs, so short gaps don't overshoot by a full quantum.
        let needed = Duration::from_secs_f64((deficit / self.rate).min(60.0));
        std::thread::sleep(needed.min(self.quantum));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_horizon_is_the_target_and_never_waits() {
        let mut exec = SimClock;
        assert_eq!(exec.name(), "sim");
        assert!(!exec.is_realtime());
        assert_eq!(exec.horizon(42.5), 42.5);
        assert_eq!(exec.horizon(f64::INFINITY), f64::INFINITY);
        let start = Instant::now();
        exec.wait(1e9);
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn wall_clock_accrues_monotonically_and_respects_target() {
        let mut exec = WallClock::starting_at(10.0, 1000.0);
        assert_eq!(exec.name(), "wall");
        assert!(exec.is_realtime());
        let h0 = exec.horizon(f64::INFINITY);
        assert!(h0 >= 10.0);
        std::thread::sleep(Duration::from_millis(5));
        let h1 = exec.horizon(f64::INFINITY);
        assert!(h1 > h0, "accrued simulated time must grow with wall time");
        // A target below the accrued horizon caps the pump.
        assert_eq!(exec.horizon(10.5), 10.5);
    }

    #[test]
    fn wall_clock_wait_lets_a_nearby_target_accrue() {
        let mut exec = WallClock::starting_at(0.0, 1000.0).with_quantum(Duration::from_millis(2));
        let target = exec.accrued() + 5.0; // 5 simulated ms away
        while exec.horizon(target) < target {
            exec.wait(target);
        }
        assert!(exec.accrued() >= target);
    }

    #[test]
    #[should_panic(expected = "rate must be finite")]
    fn wall_clock_rejects_nonpositive_rate() {
        let _ = WallClock::starting_at(0.0, 0.0);
    }
}
