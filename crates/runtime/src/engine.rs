//! The distributed NDlog engine: shard coordinator.
//!
//! The engine executes a (localized, normalized) NDlog [`Program`] over the
//! discrete-event simulator using pipelined semi-naïve evaluation: every
//! tuple insertion or deletion is a *delta* processed one at a time from the
//! per-node FIFO (modelled by the per-shard simulated-time event queues).  A
//! delta is applied to the local table, and — if the visible state changed —
//! joined against the other body predicates of every rule it can trigger,
//! producing new deltas that are either enqueued locally or shipped to the
//! head's location specifier over the network.
//!
//! Deletions flow through exactly the same machinery with inverted polarity
//! (the deletion delta rules of §4.2), relying on the derivation counts kept
//! by [`crate::table::Table`] so that a tuple only disappears when its last
//! derivation is gone.
//!
//! # Sharded execution
//!
//! The topology's nodes are partitioned over `Shard`s (see [`crate::shard`]) by
//! rendezvous hashing; each shard owns the tables, event queue and traffic
//! counters of its nodes.  [`Engine::run_until`] runs the shards on worker
//! threads in *barrier windows*: at each barrier the coordinator finds the
//! earliest pending event time `t_min` across all shards and releases every
//! shard to process its events strictly before `t_min + L`, where `L` is the
//! smallest link latency of the topology (the *lookahead*).  A cross-shard
//! delta produced inside the window is due no earlier than the window's end,
//! so delivering the per-shard outboxes into the destination inboxes at the
//! barrier never reorders anything.  Every event carries an
//! execution-independent ordering key (`(time, source node, per-source
//! sequence)`), per-node state is only ever touched by the owning shard, and
//! the traffic counters are integral — which together make the sharded run
//! *bit-identical* to the sequential one (`ShardConfig::sequential()`), as
//! the determinism tests assert.

use crate::shard::{RuleData, Shard};
pub use crate::shard::{ShardConfig, SharedPolicy};
use exspan_ndlog::ast::{BodyItem, Program};
use exspan_ndlog::eval::FuncRegistry;
use exspan_ndlog::plan::ProgramPlans;
use exspan_netsim::{
    EventKey, LinkClass, LinkProps, RoutedEvent, ShardView, Simulator, Topology, TrafficStats,
};
use exspan_store::{
    AggProvEntry, LinkRecord, MemoryBackend, SnapshotData, StorageBackend, StorageStats, WalOp,
};
use exspan_types::{wire, NodeId, RelId, Symbol, Tuple};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Name of the internal event used to trigger aggregate-group recomputation.
/// The `$` prefix keeps it out of the namespace of user-defined relations.
pub(crate) const AGG_RECOMPUTE_EVENT: &str = "$aggRecompute";

/// Message payload exchanged between nodes (and enqueued locally).
///
/// Deltas carry their tuple behind an [`Arc`]: the queue entry, the table row
/// it becomes on arrival and every join input cloned from it all share one
/// allocation.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A tuple delta: insertion (`insert = true`) or deletion of `tuple` at
    /// the destination node.
    Delta {
        /// The tuple being inserted or deleted (shared, never mutated).
        tuple: Arc<Tuple>,
        /// Polarity of the delta.
        insert: bool,
        /// Opaque annotation shipped with the delta (value-based provenance
        /// carries the derivation history here; see
        /// [`crate::plugin::AnnotationPolicy`]).
        token: Option<crate::plugin::AnnotationToken>,
    },
}

/// Result of processing one simulator event.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// The event was consumed by the engine.
    Handled,
    /// An event tuple arrived for which the engine has no rules.  Higher
    /// layers (the provenance query protocol) handle these.
    External {
        /// Node at which the tuple arrived.
        node: NodeId,
        /// The tuple itself (shared with the delta that carried it).
        tuple: Arc<Tuple>,
        /// Simulated arrival time.
        time: f64,
        /// Polarity of the delta.
        insert: bool,
    },
    /// The event queue is empty.
    Idle,
}

/// Statistics about a fixpoint computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixpointStats {
    /// Simulated time at which the last delta was processed.
    pub fixpoint_time: f64,
    /// Number of events processed.
    pub steps: u64,
    /// Number of external (unhandled) tuples encountered and dropped.
    pub external: u64,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// When `true`, the engine natively maintains `prov` and `ruleExec`
    /// entries for *aggregate* rule firings (tracing MIN/MAX outputs to the
    /// winning input tuple, §4.2.2).  Non-aggregate rules maintain provenance
    /// through the rewritten NDlog rules themselves; aggregates cannot be
    /// expressed that way and are instrumented here instead.
    pub aggregate_provenance: bool,
    /// Safety limit on processed events for a single `run_*` call.  In
    /// sharded runs the limit is enforced at window granularity, so slightly
    /// more events than the limit may be processed.
    pub max_steps: u64,
    /// How many shards (worker threads) execute the protocol.
    pub shards: ShardConfig,
    /// When `true` (the default), rule bodies execute compiled join plans
    /// over maintained secondary indexes (see [`exspan_ndlog::plan`]).  When
    /// `false`, evaluation falls back to body-ordered full-table scans — the
    /// historical nested-loop path, kept as the oracle for the differential
    /// tests.  Both modes are bit-identical by construction.
    pub join_planning: bool,
    /// When `true`, the engine additionally accounts every transmitted
    /// message under the dictionary wire codec ([`exspan_types::compress`]):
    /// tuple contents dictionary-encoded, annotations charged at the size
    /// the policy reports through
    /// [`crate::AnnotationPolicy::annotation_bytes_compressed`].  Off by
    /// default — the flat model behind every existing figure is untouched;
    /// the compressed totals surface through [`Engine::compressed_bytes`]
    /// and never feed back into [`Engine::stats`].
    pub track_compressed: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            aggregate_provenance: false,
            max_steps: 200_000_000,
            shards: ShardConfig::sequential(),
            join_planning: true,
            track_compressed: false,
        }
    }
}

/// The distributed declarative-networking engine.
pub struct Engine {
    data: Arc<RuleData>,
    /// Master copy of the topology; shards hold read-only snapshots that are
    /// refreshed (via [`Engine::sync_topology`]) whenever the master changed.
    topology: Topology,
    topo_dirty: bool,
    /// `assignment[node]` = shard owning that node.
    assignment: Arc<Vec<u16>>,
    shards: Vec<Shard>,
    /// Cross-shard mailboxes: `inboxes[s]` holds events routed to shard `s`
    /// that it has not yet pulled into its queue.
    inboxes: Vec<Mutex<Vec<RoutedEvent<Payload>>>>,
    policy: Option<SharedPolicy>,
    /// Storage backend behind the persistence seam.  The in-memory default
    /// ([`MemoryBackend`]) accepts and discards everything; shard journaling
    /// stays off, so the hot path pays nothing.
    backend: Box<dyn StorageBackend>,
    /// Sequence number of the last committed WAL batch.
    commit_seq: u64,
    /// Topology link changes journaled since the last barrier flush (links
    /// live on the coordinator, not in any shard's table store).
    link_journal: Vec<WalOp>,
    /// Whether journaling is active (persistent backend attached).
    journaling: bool,
}

/// On-wire encoding of a [`LinkClass`] inside a [`LinkRecord`].
fn link_class_code(class: LinkClass) -> u8 {
    match class {
        LinkClass::TransitTransit => 0,
        LinkClass::TransitStub => 1,
        LinkClass::StubStub => 2,
        LinkClass::Testbed => 3,
        LinkClass::Custom => 4,
    }
}

fn link_class_from_code(code: u8) -> LinkClass {
    match code {
        0 => LinkClass::TransitTransit,
        1 => LinkClass::TransitStub,
        2 => LinkClass::StubStub,
        3 => LinkClass::Testbed,
        _ => LinkClass::Custom,
    }
}

fn link_record(a: NodeId, b: NodeId, props: &LinkProps) -> LinkRecord {
    LinkRecord {
        a,
        b,
        latency_bits: props.latency.to_bits(),
        bandwidth_bits: props.bandwidth.to_bits(),
        cost: props.cost,
        class: link_class_code(props.class),
    }
}

fn link_props(record: &LinkRecord) -> LinkProps {
    LinkProps {
        latency: f64::from_bits(record.latency_bits),
        bandwidth: f64::from_bits(record.bandwidth_bits),
        cost: record.cost,
        class: link_class_from_code(record.class),
    }
}

impl Engine {
    /// Creates an engine executing `program` over `topology`.
    pub fn new(program: Program, topology: Topology, config: EngineConfig) -> Self {
        let program = program.normalize();
        let mut triggers: HashMap<RelId, Vec<(usize, usize)>> = HashMap::new();
        for (ri, rule) in program.rules.iter().enumerate() {
            for (ai, item) in rule.body.iter().enumerate() {
                if let BodyItem::Atom(a) = item {
                    // Register every occurrence as a trigger position; the
                    // same relation occurring twice registers twice.
                    triggers.entry(a.relation).or_default().push((ri, ai));
                }
            }
        }
        let keys: HashMap<RelId, Vec<usize>> = program
            .tables
            .iter()
            .map(|t| (t.relation, t.keys.clone()))
            .collect();
        // Compile the per-(rule, trigger) join plans and collect the
        // secondary indexes they demand; every shard's table store maintains
        // exactly those indexes.
        let plans = if config.join_planning {
            ProgramPlans::compile(&program)
        } else {
            ProgramPlans::disabled(&program)
        };
        let index_demands: HashMap<RelId, Vec<Vec<usize>>> = plans
            .demands
            .iter()
            .map(|(rel, cols)| (*rel, cols.iter().cloned().collect()))
            .collect();
        let num_shards = config.shards.num_shards.max(1);
        let assignment = Arc::new(topology.partition_rendezvous(num_shards));
        let data = Arc::new(RuleData {
            rules: program.rules,
            triggers,
            plans,
            agg_recompute: Symbol::intern(AGG_RECOMPUTE_EVENT),
            funcs: FuncRegistry::new(),
            config,
        });
        let topo_arc = Arc::new(topology.clone());
        let shards = (0..num_shards)
            .map(|i| {
                let mut sim = Simulator::with_bucket_width(Arc::clone(&topo_arc), 0.1);
                if num_shards > 1 {
                    sim.configure_shard(ShardView {
                        assignment: Arc::clone(&assignment),
                        shard_id: i as u16,
                    });
                }
                Shard::new(Arc::clone(&data), keys.clone(), index_demands.clone(), sim)
            })
            .collect();
        Engine {
            data,
            topology,
            topo_dirty: false,
            assignment,
            inboxes: (0..num_shards).map(|_| Mutex::new(Vec::new())).collect(),
            shards,
            policy: None,
            backend: Box::new(MemoryBackend),
            commit_seq: 0,
            link_journal: Vec::new(),
            journaling: false,
        }
    }

    /// Number of shards executing this engine.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> u16 {
        self.assignment.get(node as usize).copied().unwrap_or(0)
    }

    fn owner(&self, node: NodeId) -> usize {
        self.shard_of(node) as usize
    }

    /// Installs an [`crate::plugin::AnnotationPolicy`] (e.g. value-based
    /// provenance).  The policy is shared by every shard behind a mutex;
    /// install it before scheduling any base tuples.
    pub fn set_annotation_policy(&mut self, policy: SharedPolicy) {
        for shard in &mut self.shards {
            shard.policy = Some(Arc::clone(&policy));
        }
        self.policy = Some(policy);
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.shards.iter().map(|s| s.sim.now()).fold(0.0, f64::max)
    }

    /// Time at which the last delta was processed (the fixpoint time once the
    /// queue drains).
    pub fn last_activity(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.last_delta_time)
            .fold(0.0, f64::max)
    }

    /// Traffic statistics, merged across shards.  The merge is exact (all
    /// counters are integral), so the result is identical to what the
    /// sequential engine accumulates.
    pub fn stats(&self) -> TrafficStats {
        let mut merged = self.shards[0].sim.stats().clone();
        for shard in &self.shards[1..] {
            merged.merge_from(shard.sim.stats());
        }
        merged
    }

    /// Total bytes every transmitted message would have cost under the
    /// dictionary wire codec, summed across shards.  Only accumulates when
    /// [`EngineConfig::track_compressed`] is set; the merge is a sum of
    /// integral per-shard counters, so — like [`Engine::stats`] — the result
    /// is identical at any shard count.
    pub fn compressed_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.compressed_bytes).sum()
    }

    /// Total count (across shards) of evaluation errors that the static
    /// analyzer guarantees cannot happen for accepted programs (unbound
    /// variables, unknown functions).  Always 0 for programs that pass
    /// `exspan_ndlog::analyze` without errors; the differential tests assert
    /// exactly that.  Data-dependent rejections (type mismatches in
    /// comparisons) are not errors and are not counted.
    pub fn eval_errors(&self) -> u64 {
        self.shards.iter().map(|s| s.eval_errors.get()).sum()
    }

    /// The network topology (mutable, for churn).  Shards receive the updated
    /// snapshot before the next run or step.
    pub fn topology_mut(&mut self) -> &mut Topology {
        self.topo_dirty = true;
        &mut self.topology
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Re-distributes the master topology to the shards if it changed.
    fn sync_topology(&mut self) {
        if !self.topo_dirty {
            return;
        }
        let snapshot = Arc::new(self.topology.clone());
        for shard in &mut self.shards {
            shard.sim.set_topology(Arc::clone(&snapshot));
        }
        self.topo_dirty = false;
    }

    /// Visible tuples of `relation` at `node` as shared handles (no
    /// attribute-vector copies).
    pub fn tuples_shared(&self, node: NodeId, relation: &str) -> Vec<Arc<Tuple>> {
        self.shards[self.owner(node)]
            .store
            .tuples_shared(node, RelId::intern(relation))
    }

    /// Visible tuples of `relation` across all nodes, as shared handles
    /// sorted by tuple content.
    pub fn tuples_everywhere_shared(&self, relation: &str) -> Vec<Arc<Tuple>> {
        let rel = RelId::intern(relation);
        let mut out: Vec<Arc<Tuple>> = self
            .shards
            .iter()
            .flat_map(|s| s.store.tuples_everywhere_shared(rel))
            .collect();
        out.sort();
        out
    }

    /// Derivation count of an exact tuple at its own location (serving
    /// spilled tables by cold read).
    pub fn derivation_count(&self, tuple: &Tuple) -> usize {
        self.shards[self.owner(tuple.location)]
            .store
            .derivation_count(tuple.location, tuple)
    }

    /// Total number of stored tuples across all nodes and relations.
    pub fn total_tuples(&self) -> usize {
        self.shards.iter().map(|s| s.store.total_tuples()).sum()
    }

    fn notify_base(&mut self, node: NodeId, tuple: &Tuple, insert: bool) {
        if let Some(policy) = &self.policy {
            policy
                .lock()
                .expect("annotation policy poisoned")
                .on_base(node, tuple, insert);
        }
    }

    /// Inserts a base tuple at `node` now (processed when its event fires).
    pub fn insert_base(&mut self, node: NodeId, tuple: Tuple) {
        self.notify_base(node, &tuple, true);
        let now = self.now();
        let owner = self.owner(node);
        self.shards[owner].sim.schedule_at(
            now,
            node,
            Payload::Delta {
                tuple: Arc::new(tuple),
                insert: true,
                token: None,
            },
        );
    }

    /// Deletes a base tuple at `node` now.
    pub fn delete_base(&mut self, node: NodeId, tuple: Tuple) {
        self.notify_base(node, &tuple, false);
        let now = self.now();
        let owner = self.owner(node);
        self.shards[owner].sim.schedule_at(
            now,
            node,
            Payload::Delta {
                tuple: Arc::new(tuple),
                insert: false,
                token: None,
            },
        );
    }

    /// Schedules a delta at an absolute simulated time (used by experiment
    /// drivers for churn and data-plane workloads).
    pub fn schedule_delta(&mut self, time: f64, node: NodeId, tuple: Tuple, insert: bool) {
        // Scheduled base-level changes are reported to the policy when
        // they are scheduled; derived deltas never go through here.
        self.notify_base(node, &tuple, insert);
        let owner = self.owner(node);
        self.shards[owner].sim.schedule_at(
            time,
            node,
            Payload::Delta {
                tuple: Arc::new(tuple),
                insert,
                token: None,
            },
        );
    }

    /// Sends a tuple from `from` to `to` on behalf of a higher layer (the
    /// provenance query protocol), charging `extra_bytes` of annotation in
    /// addition to the tuple's wire size.
    pub fn send_tuple(&mut self, from: NodeId, to: NodeId, tuple: Tuple, extra_bytes: usize) {
        self.sync_topology();
        let bytes = wire::message_size(std::slice::from_ref(&tuple), extra_bytes);
        let owner = self.owner(from);
        if self.data.config.track_compressed {
            // Query-layer annotations are opaque to the codec: the tuple
            // contents compress, the annotation is charged as-is.
            self.shards[owner].compressed_bytes += exspan_types::compress::compressed_message_size(
                std::slice::from_ref(&tuple),
                extra_bytes,
            ) as u64;
        }
        self.shards[owner].sim.send(
            from,
            to,
            bytes,
            Payload::Delta {
                tuple: Arc::new(tuple),
                insert: true,
                token: None,
            },
        );
        self.flush_outboxes();
    }

    /// Directly stores a tuple at a node without triggering any rules.
    /// Used by higher layers for bookkeeping tables (e.g. query caches).
    pub fn store_silent(&mut self, node: NodeId, tuple: &Tuple) {
        let owner = self.owner(node);
        let tuple = Arc::new(tuple.clone());
        self.shards[owner].store.journal_tuple(node, true, &tuple);
        self.shards[owner]
            .store
            .table_mut(node, tuple.relation)
            .insert_shared(&tuple);
    }

    /// Directly removes a tuple at a node without triggering any rules.
    pub fn remove_silent(&mut self, node: NodeId, tuple: &Tuple) {
        let owner = self.owner(node);
        let tuple = Arc::new(tuple.clone());
        self.shards[owner].store.journal_tuple(node, false, &tuple);
        self.shards[owner]
            .store
            .table_mut(node, tuple.relation)
            .delete(&tuple);
    }

    /// Moves events diverted to foreign shards into the destination inboxes,
    /// coalescing same-destination events into one locked append per
    /// destination shard rather than a lock round-trip per event.
    fn flush_outboxes(&mut self) {
        let num_shards = self.shards.len();
        let mut grouped: Vec<Vec<RoutedEvent<Payload>>> = Vec::new();
        for i in 0..num_shards {
            let out = self.shards[i].sim.take_outbox();
            if out.is_empty() {
                continue;
            }
            grouped.resize_with(num_shards, Vec::new);
            for ev in out {
                grouped[self.owner(ev.msg.to)].push(ev);
            }
        }
        for (dest, batch) in grouped.iter_mut().enumerate() {
            if !batch.is_empty() {
                self.inboxes[dest]
                    .lock()
                    .expect("inbox poisoned")
                    .append(batch);
            }
        }
    }

    /// Pulls every inbox into its shard's queue (single-threaded contexts).
    fn drain_inboxes(&mut self) {
        for (shard, inbox) in self.shards.iter_mut().zip(&self.inboxes) {
            shard.drain_inbox(inbox);
        }
    }

    /// Processes the next event in global deterministic order.
    ///
    /// With multiple shards this merges the per-shard queues by event key —
    /// the exact order the sequential engine would use — so layers that need
    /// single-step control (the provenance query protocol) behave
    /// identically regardless of shard count.
    pub fn step(&mut self) -> Step {
        self.sync_topology();
        self.flush_outboxes();
        self.drain_inboxes();
        let next: Option<(usize, EventKey)> = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.sim.peek_key().map(|k| (i, k)))
            .min_by(|(_, a), (_, b)| a.order(b));
        let Some((idx, _)) = next else {
            return Step::Idle;
        };
        let step = self.shards[idx].step();
        self.flush_outboxes();
        step
    }

    /// Simulated time of the earliest pending event across all shards (after
    /// delivering any in-flight cross-shard deltas), or `None` when every
    /// queue is empty.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.sync_topology();
        self.flush_outboxes();
        self.drain_inboxes();
        self.shards
            .iter()
            .filter_map(|s| s.sim.peek_time())
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Runs until the event queue is empty (global fixpoint).
    pub fn run_to_fixpoint(&mut self) -> FixpointStats {
        self.run_until(f64::INFINITY)
    }

    /// Like [`Engine::run_until`], but instead of dropping external tuples it
    /// hands each one to `sink` — in global deterministic event order, with
    /// the engine available for replies — so higher protocol layers (the
    /// provenance query protocol) advance on the *same* simulated clock as
    /// protocol maintenance and churn.
    ///
    /// Events are processed one at a time through the deterministic
    /// merged-queue path ([`Engine::step`]), so the result is bit-identical
    /// at any shard count.  Callers with no external traffic in flight should
    /// prefer [`Engine::run_until`], which can use the parallel barrier loop.
    pub fn run_until_interactive(
        &mut self,
        time_limit: f64,
        sink: &mut dyn crate::plugin::ExternalSink,
    ) -> FixpointStats {
        let steps_before: u64 = self.shards.iter().map(|s| s.processed).sum();
        let max_steps = self.data.config.max_steps;
        // With an infinite limit the time check can never trigger, and
        // step() already reports queue exhaustion as Idle — skip the peek
        // (it repeats the flush/drain work step() performs) on that path.
        let check_limit = time_limit.is_finite();
        let mut steps = 0u64;
        let mut external = 0u64;
        while steps < max_steps {
            if check_limit {
                match self.peek_time() {
                    None => break,
                    Some(t) if t > time_limit => break,
                    Some(_) => {}
                }
            }
            match self.step() {
                Step::Idle => break,
                Step::Handled => steps += 1,
                Step::External {
                    node,
                    tuple,
                    time,
                    insert,
                } => {
                    steps += 1;
                    external += 1;
                    sink.on_external(self, node, tuple, time, insert);
                }
            }
        }
        self.flush_storage();
        let steps_after: u64 = self.shards.iter().map(|s| s.processed).sum();
        FixpointStats {
            fixpoint_time: self.last_activity(),
            steps: steps_after - steps_before,
            external,
        }
    }

    /// Runs until the next event would occur after `time_limit` (or the
    /// queues empty).  External tuples are dropped and counted.
    pub fn run_until(&mut self, time_limit: f64) -> FixpointStats {
        self.sync_topology();
        self.flush_outboxes();
        self.drain_inboxes();
        let steps_before: u64 = self.shards.iter().map(|s| s.processed).sum();
        let ext_before: u64 = self.shards.iter().map(|s| s.externals_seen).sum();
        if self.shards.len() == 1 {
            self.run_sequential(time_limit);
        } else {
            self.run_parallel(time_limit);
        }
        // The window just closed and every worker thread has joined: commit
        // the journaled operations as one quiescent WAL batch.
        self.flush_storage();
        let steps_after: u64 = self.shards.iter().map(|s| s.processed).sum();
        let ext_after: u64 = self.shards.iter().map(|s| s.externals_seen).sum();
        FixpointStats {
            fixpoint_time: self.last_activity(),
            steps: steps_after - steps_before,
            external: ext_after - ext_before,
        }
    }

    /// The historical single-threaded event loop (one shard owns everything).
    fn run_sequential(&mut self, time_limit: f64) {
        let max_steps = self.data.config.max_steps;
        let shard = &mut self.shards[0];
        let mut steps = 0u64;
        while steps < max_steps {
            match shard.sim.peek_time() {
                None => break,
                Some(t) if t > time_limit => break,
                Some(_) => {}
            }
            match shard.step() {
                Step::Idle => break,
                _ => steps += 1,
            }
        }
    }

    /// The barrier-windowed parallel event loop.
    ///
    /// Every round has three barriers: (w) all shards finished their window
    /// and delivered their outboxes, (a) all shards drained their inboxes and
    /// published their earliest pending event time, (b) the coordinator
    /// decided the next horizon (or termination).  Shards then process all
    /// events strictly before the horizon in parallel.
    fn run_parallel(&mut self, time_limit: f64) {
        let lookahead = self.topology.min_link_latency().unwrap_or(f64::INFINITY);
        assert!(
            lookahead > 0.0,
            "links must have positive latency for the parallel runtime"
        );
        let max_steps = self.data.config.max_steps;
        let num_shards = self.shards.len();
        let barrier = Barrier::new(num_shards + 1);
        let next_times: Vec<AtomicU64> = (0..num_shards)
            .map(|_| AtomicU64::new(f64::NAN.to_bits()))
            .collect();
        let horizon = AtomicU64::new(f64::NAN.to_bits());
        let stop = AtomicBool::new(false);
        let total_steps = AtomicU64::new(0);

        fn publish(slot: &AtomicU64, t: Option<f64>) {
            slot.store(t.unwrap_or(f64::NAN).to_bits(), Ordering::SeqCst);
        }

        let inboxes = &self.inboxes;
        let assignment = &self.assignment;
        let barrier_ref = &barrier;
        let next_ref = &next_times;
        let horizon_ref = &horizon;
        let stop_ref = &stop;
        let steps_ref = &total_steps;

        std::thread::scope(|scope| {
            for (i, shard) in self.shards.iter_mut().enumerate() {
                scope.spawn(move || {
                    shard.drain_inbox(&inboxes[i]);
                    publish(&next_ref[i], shard.sim.peek_time());
                    // Per-destination coalescing buffers, reused across
                    // windows: one locked append per destination shard per
                    // barrier window instead of a lock round-trip per event.
                    let mut outbound: Vec<Vec<RoutedEvent<Payload>>> =
                        (0..num_shards).map(|_| Vec::new()).collect();
                    loop {
                        barrier_ref.wait(); // (a) every shard published its minimum
                        barrier_ref.wait(); // (b) coordinator decided
                        if stop_ref.load(Ordering::SeqCst) {
                            break;
                        }
                        let h = f64::from_bits(horizon_ref.load(Ordering::SeqCst));
                        let (steps, _) = shard.run_window(h, time_limit);
                        steps_ref.fetch_add(steps, Ordering::SeqCst);
                        for ev in shard.sim.take_outbox() {
                            outbound[assignment[ev.msg.to as usize] as usize].push(ev);
                        }
                        for (dest, batch) in outbound.iter_mut().enumerate() {
                            if !batch.is_empty() {
                                inboxes[dest].lock().expect("inbox poisoned").append(batch);
                            }
                        }
                        barrier_ref.wait(); // (w) all cross-shard deltas delivered
                        shard.drain_inbox(&inboxes[i]);
                        publish(&next_ref[i], shard.sim.peek_time());
                    }
                });
            }
            // Coordinator.
            loop {
                barrier.wait(); // (a)
                let min_next = next_times
                    .iter()
                    .map(|s| f64::from_bits(s.load(Ordering::SeqCst)))
                    .filter(|t| !t.is_nan())
                    .fold(f64::NAN, f64::min);
                let exhausted = total_steps.load(Ordering::SeqCst) >= max_steps;
                let terminate = min_next.is_nan() || min_next > time_limit || exhausted;
                if terminate {
                    stop.store(true, Ordering::SeqCst);
                } else {
                    horizon.store((min_next + lookahead).to_bits(), Ordering::SeqCst);
                }
                barrier.wait(); // (b)
                if terminate {
                    break;
                }
                barrier.wait(); // (w)
            }
        });
    }

    // ------------------------------------------------------------------
    // Persistence (the storage seam)
    // ------------------------------------------------------------------

    /// Attaches a storage backend and turns on operation journaling.
    ///
    /// `start_seq` seeds the commit sequence (the recovered watermark when
    /// reopening an existing store, 0 for a fresh one).  `spill` optionally
    /// enables cold-table eviction: `(directory, in-memory row budget)`.
    /// Call after recovery replay, so the replayed operations are not
    /// re-journaled.
    pub fn attach_storage(
        &mut self,
        backend: Box<dyn StorageBackend>,
        start_seq: u64,
        spill: Option<(PathBuf, usize)>,
    ) {
        self.backend = backend;
        self.commit_seq = start_seq;
        self.journaling = self.backend.is_persistent();
        for shard in &mut self.shards {
            shard.store.set_journaling(self.journaling);
            // Node ownership is exclusive, so every shard can share one
            // spill directory without file-name collisions.
            if let Some((dir, budget)) = &spill {
                shard.store.enable_spill(dir.clone(), *budget);
            }
        }
    }

    /// Journals a topology link change (call alongside the
    /// `topology_mut().add_link/remove_link` that applies it; no-op without
    /// a persistent backend).
    pub fn journal_link(&mut self, add: bool, a: NodeId, b: NodeId, props: &LinkProps) {
        if self.journaling {
            self.link_journal.push(WalOp::Link {
                add,
                link: link_record(a, b, props),
            });
        }
    }

    /// Commits the operations journaled since the last flush as one WAL
    /// batch, writes a snapshot if enough log accumulated, and enforces the
    /// spill budget.  Called at the single-threaded end of every `run_*`
    /// call — a quiescent barrier, so the batch captures a complete window.
    fn flush_storage(&mut self) {
        let mut enforce = false;
        if self.journaling {
            let mut ops = std::mem::take(&mut self.link_journal);
            for shard in &mut self.shards {
                ops.extend(shard.store.take_journal());
            }
            if !ops.is_empty() {
                self.commit_seq += 1;
                let time_bits = self.last_activity().to_bits();
                self.backend
                    .commit_batch(&ops, self.commit_seq, time_bits)
                    .unwrap_or_else(|e| panic!("WAL commit failed: {e}"));
                if self.backend.snapshot_due() {
                    let snap = self.collect_snapshot();
                    self.backend
                        .write_snapshot(&snap)
                        .unwrap_or_else(|e| panic!("snapshot write failed: {e}"));
                }
                enforce = true;
            }
        }
        // Spill outside the journaling borrow: eviction is budget-driven and
        // only needs to run when tables may have grown.
        if enforce {
            for shard in &mut self.shards {
                shard.store.enforce_budget();
            }
        }
    }

    /// Flushes pending journal entries and forces a snapshot (graceful-
    /// shutdown checkpoint; no-op without a persistent backend).
    pub fn checkpoint(&mut self) {
        self.flush_storage();
        if self.backend.is_persistent() {
            let snap = self.collect_snapshot();
            self.backend
                .write_snapshot(&snap)
                .unwrap_or_else(|e| panic!("checkpoint snapshot failed: {e}"));
        }
    }

    /// Collects the full logical state in canonical form: links sorted by
    /// endpoint pair, tables sorted by `(node, relation name)` with rows in
    /// `scan()` order, aggregate-provenance entries sorted by group.  The
    /// encoding of this value is a pure function of logical state — shard
    /// count, spill status and execution interleaving do not affect a byte.
    pub fn collect_snapshot(&self) -> SnapshotData {
        let mut links: Vec<LinkRecord> = self
            .topology
            .links()
            .map(|(a, b, props)| link_record(a, b, props))
            .collect();
        links.sort_by_key(|l| (l.a, l.b));
        let mut tables: Vec<exspan_store::TableDump> =
            self.shards.iter().flat_map(|s| s.store.dump()).collect();
        tables.sort_by(|x, y| (x.node, x.relation.as_str()).cmp(&(y.node, y.relation.as_str())));
        let mut agg: Vec<AggProvEntry> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.agg_prov
                    .iter()
                    .map(|((node, relation, group), (prov, exec))| AggProvEntry {
                        node: *node,
                        relation: *relation,
                        group: group.clone(),
                        prov: Arc::clone(prov),
                        exec: Arc::clone(exec),
                    })
            })
            .collect();
        agg.sort_by(|x, y| {
            (x.node, x.relation.as_str(), &x.group).cmp(&(y.node, y.relation.as_str(), &y.group))
        });
        SnapshotData {
            seq: self.commit_seq,
            time_bits: self.last_activity().to_bits(),
            node_count: self.topology.num_nodes() as u32,
            links,
            tables,
            agg,
        }
    }

    /// SHA-1 over the canonical snapshot encoding: equal digests ⇔ equal
    /// logical state, independent of shard count and spill status.  The
    /// commit sequence number is zeroed first — it counts storage-layer
    /// barrier flushes, so an in-memory deployment and a persistent one in
    /// the same logical state would otherwise digest differently.
    pub fn state_digest(&self) -> exspan_types::Digest {
        let mut snap = self.collect_snapshot();
        snap.seq = 0;
        let mut bytes = Vec::new();
        exspan_store::snapshot::encode_snapshot(&snap, &mut bytes);
        exspan_types::sha1_digest(&bytes)
    }

    /// Storage counters: backend-side (WAL/snapshot) merged with the
    /// shard-side spill counters.
    pub fn storage_stats(&self) -> StorageStats {
        let mut stats = self.backend.stats();
        for shard in &self.shards {
            let (spills, faults, cold) = shard.store.spill_counters();
            stats.tables_spilled += spills;
            stats.tables_faulted += faults;
            stats.cold_reads += cold;
        }
        stats
    }

    // ------------------------------------------------------------------
    // Recovery (applying a recovered store to a fresh engine)
    // ------------------------------------------------------------------

    /// Replaces the topology's link set with `links` (snapshot restore).
    /// The node count must already match; link changes journaled afterwards
    /// are applied by [`Engine::apply_wal_op`].
    pub fn restore_links(&mut self, links: &[LinkRecord]) {
        let existing: Vec<(NodeId, NodeId)> =
            self.topology.links().map(|(a, b, _)| (a, b)).collect();
        let topo = self.topology_mut();
        for (a, b) in existing {
            topo.remove_link(a, b);
        }
        for l in links {
            topo.add_link(l.a, l.b, link_props(l));
        }
    }

    /// Reinstates one snapshot table row (tuple with its derivation count)
    /// at its owning shard, rebuilding secondary indexes as it goes.
    pub fn restore_table_row(&mut self, node: NodeId, tuple: Arc<Tuple>, count: u64) {
        let owner = self.owner(node);
        self.shards[owner]
            .store
            .table_mut(node, tuple.relation)
            .restore(tuple, count);
    }

    /// Reinstates one snapshot aggregate-provenance entry at its owning
    /// shard.
    pub fn restore_agg(&mut self, entry: &AggProvEntry) {
        let owner = self.owner(entry.node);
        self.shards[owner].agg_prov.insert(
            (entry.node, entry.relation, entry.group.clone()),
            (Arc::clone(&entry.prov), Arc::clone(&entry.exec)),
        );
    }

    /// Replays one journaled operation.  Tuple intents run through the
    /// identical table code that produced them, so replay reproduces
    /// duplicate counts, keyed replacement and decrement-vs-remove outcomes
    /// exactly; rules are *not* re-fired (their derived deltas were
    /// journaled as their own operations).
    pub fn apply_wal_op(&mut self, op: &WalOp) {
        match op {
            WalOp::Tuple {
                node,
                insert,
                tuple,
            } => {
                let owner = self.owner(*node);
                let table = self.shards[owner].store.table_mut(*node, tuple.relation);
                if *insert {
                    table.insert_shared(tuple);
                } else {
                    table.delete(tuple);
                }
            }
            WalOp::Link { add, link } => {
                let topo = self.topology_mut();
                if *add {
                    topo.add_link(link.a, link.b, link_props(link));
                } else {
                    topo.remove_link(link.a, link.b);
                }
            }
            WalOp::AggProv {
                install,
                node,
                relation,
                group,
                tuples,
            } => {
                let owner = self.owner(*node);
                if let (true, Some((prov, exec))) = (install, tuples) {
                    self.shards[owner].agg_prov.insert(
                        (*node, *relation, group.clone()),
                        (Arc::clone(prov), Arc::clone(exec)),
                    );
                } else {
                    self.shards[owner]
                        .agg_prov
                        .remove(&(*node, *relation, group.clone()));
                }
            }
        }
    }

    /// Advances every shard's simulated clock (and last-activity marker) to
    /// the recovered watermark, so post-recovery scheduling continues from
    /// where the crashed run committed.
    pub fn restore_clock(&mut self, time: f64) {
        for shard in &mut self.shards {
            shard.sim.advance_to(time);
            shard.last_delta_time = time;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exspan_ndlog::programs;
    use exspan_netsim::Topology;
    use exspan_types::Value;

    fn link(s: NodeId, d: NodeId, c: i64) -> Tuple {
        Tuple::new("link", s, vec![Value::Node(d), Value::Int(c)])
    }

    fn best(s: NodeId, d: NodeId, c: i64) -> Tuple {
        Tuple::new("bestPathCost", s, vec![Value::Node(d), Value::Int(c)])
    }

    /// Shared-handle membership test (the tests read state through the
    /// zero-copy accessors).
    fn contains(tuples: &[Arc<Tuple>], t: &Tuple) -> bool {
        tuples.iter().any(|x| **x == *t)
    }

    /// Inserts both directions of every link of the topology as base tuples
    /// (the paper assumes symmetric links).
    fn seed_links(engine: &mut Engine) {
        let links: Vec<(NodeId, NodeId, i64)> = engine
            .topology()
            .links()
            .map(|(a, b, p)| (a, b, p.cost))
            .collect();
        for (a, b, cost) in links {
            engine.insert_base(a, link(a, b, cost));
            engine.insert_base(b, link(b, a, cost));
        }
    }

    #[test]
    fn mincost_on_paper_topology_matches_figure_3() {
        // Figure 3: best path cost a->c is 5 (direct, or via b: 3+2=5).
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        let stats = engine.run_to_fixpoint();
        assert!(stats.steps > 0);

        // a = node 0, b = 1, c = 2, d = 3.
        let a_best = engine.tuples_shared(0, "bestPathCost");
        let get = |d: NodeId| -> i64 {
            a_best
                .iter()
                .find(|t| t.values[0] == Value::Node(d))
                .map_or(i64::MAX, |t| t.values[1].as_int().unwrap())
        };
        assert_eq!(get(1), 3); // a->b direct
        assert_eq!(get(2), 5); // a->c direct or via b
        assert_eq!(get(3), 8); // a->b->c->d = 3+2+3
                               // b's best cost to c is 2.
        let b_best = engine.tuples_shared(1, "bestPathCost");
        assert!(contains(&b_best, &best(1, 2, 2)));
        // pathCost(@a,c,5) has two derivations (Figure 4).
        let pc = Tuple::new("pathCost", 0, vec![Value::Node(2), Value::Int(5)]);
        assert_eq!(engine.derivation_count(&pc), 2);
    }

    #[test]
    fn mincost_handles_link_deletion_incrementally() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        // Delete the direct a-c link (cost 5) in both directions.
        engine.delete_base(0, link(0, 2, 5));
        engine.delete_base(2, link(2, 0, 5));
        engine.run_to_fixpoint();
        // Best cost a->c remains 5 via b (3+2), but now with one derivation.
        let a_best = engine.tuples_shared(0, "bestPathCost");
        assert!(contains(&a_best, &best(0, 2, 5)));
        let pc = Tuple::new("pathCost", 0, vec![Value::Node(2), Value::Int(5)]);
        assert_eq!(engine.derivation_count(&pc), 1);
        // Now delete a-b as well: a's only neighbour left is... none (a had b and c).
        engine.delete_base(0, link(0, 1, 3));
        engine.delete_base(1, link(1, 0, 3));
        engine.run_to_fixpoint();
        let a_best = engine.tuples_shared(0, "bestPathCost");
        assert!(
            a_best.is_empty(),
            "a is disconnected, all bestPathCost tuples must be retracted, got {a_best:?}"
        );
    }

    #[test]
    fn mincost_cost_improvement_replaces_keyed_row() {
        // Line 0-1-2 with expensive direct link 0-2; adding a cheap link later
        // must lower the best cost (keyed update) and cascade.
        let mut topo = Topology::empty(3);
        use exspan_netsim::{LinkClass, LinkProps};
        let props = |cost| LinkProps {
            cost,
            ..LinkProps::from_class(LinkClass::Custom)
        };
        topo.add_link(0, 1, props(10));
        topo.add_link(1, 2, props(10));
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        assert!(contains(
            &engine.tuples_shared(0, "bestPathCost"),
            &best(0, 2, 20)
        ));
        // New cheap direct link 0-2.
        engine.topology_mut().add_link(0, 2, props(3));
        engine.insert_base(0, link(0, 2, 3));
        engine.insert_base(2, link(2, 0, 3));
        engine.run_to_fixpoint();
        let bests = engine.tuples_shared(0, "bestPathCost");
        assert!(contains(&bests, &best(0, 2, 3)));
        assert!(!contains(&bests, &best(0, 2, 20)));
        // Node 1's cost to 2 must not regress.
        assert!(contains(
            &engine.tuples_shared(1, "bestPathCost"),
            &best(1, 2, 10)
        ));
    }

    #[test]
    fn path_vector_computes_loop_free_paths() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::path_vector(), topo, EngineConfig::default());
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        // Best path a->d must be a,b,c,d (cost 8) or a,c,d (cost 8): both cost
        // 8; accept either but require cost 8 and a loop-free path ending at d.
        let best_paths = engine.tuples_shared(0, "bestPath");
        let to_d = best_paths
            .iter()
            .find(|t| t.values[0] == Value::Node(3))
            .expect("a must have a best path to d");
        assert_eq!(to_d.values[2], Value::Int(8));
        let path = to_d.values[1].as_list().unwrap();
        assert_eq!(path.first(), Some(&Value::Node(0)));
        assert_eq!(path.last(), Some(&Value::Node(3)));
        let unique: std::collections::BTreeSet<_> = path.iter().collect();
        assert_eq!(unique.len(), path.len(), "path must be loop-free");
    }

    #[test]
    fn packet_forward_delivers_along_best_path() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::packet_forward(), topo, EngineConfig::default());
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        // Send a packet from a (0) to d (3).
        let packet = Tuple::new(
            "ePacket",
            0,
            vec![Value::Node(0), Value::Node(3), Value::Payload(1024)],
        );
        engine.insert_base(0, packet);
        engine.run_to_fixpoint();
        let received = engine.tuples_shared(3, "recvPacket");
        assert_eq!(received.len(), 1, "packet must be delivered exactly once");
        assert_eq!(received[0].values[0], Value::Node(0));
        assert_eq!(received[0].values[1], Value::Node(3));
        // No other node materialized a recvPacket.
        for n in [0, 1, 2] {
            assert!(engine.tuples_shared(n, "recvPacket").is_empty());
        }
    }

    #[test]
    fn traffic_is_accounted_for_remote_derivations() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        let stats = engine.stats();
        assert!(stats.total_bytes() > 0, "protocol must exchange messages");
        assert!(stats.total_messages() > 0);
        // Every node participates.
        for n in 0..4 {
            assert!(stats.bytes_sent[n] > 0, "node {n} sent nothing");
        }
    }

    #[test]
    fn external_event_tuples_are_surfaced() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        let q = Tuple::new("eProvQuery", 2, vec![Value::Int(42)]);
        engine.send_tuple(0, 2, q.clone(), 0);
        loop {
            match engine.step() {
                Step::External { node, tuple, .. } => {
                    assert_eq!(node, 2);
                    assert_eq!(*tuple, q);
                    break;
                }
                Step::Handled => {}
                Step::Idle => panic!("external tuple was never surfaced"),
            }
        }
    }

    #[test]
    fn run_until_respects_time_limit() {
        let topo = Topology::transit_stub(1, 5);
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        let stats = engine.run_until(0.01);
        assert!(engine.now() <= 0.011);
        assert!(stats.steps > 0);
    }

    #[test]
    fn aggregate_provenance_creates_prov_and_rule_exec() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(
            programs::mincost(),
            topo,
            EngineConfig {
                aggregate_provenance: true,
                ..Default::default()
            },
        );
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        // bestPathCost(@a,c,5) must have a prov entry pointing at a ruleExec
        // for sp3 whose input is pathCost(@a,c,5).
        let target = best(0, 2, 5);
        let prov = engine.tuples_shared(0, "prov");
        let entry = prov
            .iter()
            .find(|t| t.values[0] == Value::from_digest(target.vid()))
            .expect("prov entry for bestPathCost(@a,c,5)");
        let rid = entry.values[1].clone();
        let execs = engine.tuples_shared(0, "ruleExec");
        let exec = execs
            .iter()
            .find(|t| t.values[0] == rid)
            .expect("ruleExec entry");
        assert_eq!(exec.values[1], Value::Str("sp3".into()));
        let pc_vid = Tuple::new("pathCost", 0, vec![Value::Node(2), Value::Int(5)]).vid();
        assert_eq!(
            exec.values[2],
            Value::list(vec![Value::Digest(pc_vid.0)]),
            "sp3's provenance child is the winning pathCost tuple"
        );
    }

    #[test]
    fn store_and_remove_silent_do_not_trigger_rules() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        let t = link(0, 1, 9);
        engine.store_silent(0, &t);
        assert_eq!(engine.tuples_shared(0, "link"), vec![Arc::new(t.clone())]);
        // No derivation happened (no events processed at all).
        assert!(engine.tuples_shared(0, "pathCost").is_empty());
        engine.remove_silent(0, &t);
        assert!(engine.tuples_shared(0, "link").is_empty());
    }

    type Fingerprint = (Vec<Arc<Tuple>>, Vec<u64>, Vec<(f64, f64)>);

    /// Collects a canonical snapshot of the engine's full visible state and
    /// traffic accounting, for sharded-vs-sequential comparisons.
    fn state_fingerprint(engine: &Engine, relations: &[&str]) -> Fingerprint {
        let mut tuples = Vec::new();
        for r in relations {
            tuples.extend(engine.tuples_everywhere_shared(r));
        }
        let stats = engine.stats();
        (
            tuples,
            stats.bytes_sent.clone(),
            stats.avg_bandwidth_samples(),
        )
    }

    #[test]
    fn sharded_mincost_is_bit_identical_to_sequential() {
        let relations = ["link", "pathCost", "bestPathCost"];
        let build = |shards: usize| {
            let topo = Topology::transit_stub(1, 42);
            let mut engine = Engine::new(
                programs::mincost(),
                topo,
                EngineConfig {
                    shards: ShardConfig::with_shards(shards),
                    ..Default::default()
                },
            );
            seed_links(&mut engine);
            let stats = engine.run_to_fixpoint();
            (state_fingerprint(&engine, &relations), stats)
        };
        let (seq_state, seq_stats) = build(1);
        for shards in [2, 4] {
            let (sharded_state, sharded_stats) = build(shards);
            assert_eq!(
                seq_state, sharded_state,
                "{shards}-shard run diverged from the sequential oracle"
            );
            assert_eq!(seq_stats, sharded_stats, "fixpoint stats diverged");
        }
    }

    #[test]
    fn sharded_deletion_cascade_matches_sequential() {
        let relations = ["link", "pathCost", "bestPathCost"];
        let build = |shards: usize| {
            let topo = Topology::testbed_ring(24, 7);
            let mut engine = Engine::new(
                programs::mincost(),
                topo,
                EngineConfig {
                    shards: ShardConfig::with_shards(shards),
                    ..Default::default()
                },
            );
            seed_links(&mut engine);
            engine.run_to_fixpoint();
            // Delete a few links and re-run, exercising cross-shard retraction.
            for (a, b) in [(0u32, 1u32), (5, 6), (10, 11)] {
                let cost = engine.topology().link(a, b).map_or(1, |p| p.cost);
                engine.topology_mut().remove_link(a, b);
                engine.delete_base(a, link(a, b, cost));
                engine.delete_base(b, link(b, a, cost));
            }
            engine.run_to_fixpoint();
            state_fingerprint(&engine, &relations)
        };
        let oracle = build(1);
        assert_eq!(oracle, build(3), "3-shard churned run diverged");
        assert_eq!(oracle, build(4), "4-shard churned run diverged");
    }

    #[test]
    fn run_until_interactive_hands_externals_to_the_sink_in_step_order() {
        use crate::plugin::ExternalSink;

        /// Collects surfaced externals; replies once to the first one so the
        /// reply's surfacing proves the sink can drive the engine re-entrantly.
        struct Collect {
            seen: Vec<(NodeId, Tuple, f64)>,
            replied: bool,
        }
        impl ExternalSink for Collect {
            fn on_external(
                &mut self,
                engine: &mut Engine,
                node: NodeId,
                tuple: Arc<Tuple>,
                time: f64,
                _insert: bool,
            ) {
                self.seen.push((node, (*tuple).clone(), time));
                if !self.replied && tuple.relation == "eProvQuery" {
                    self.replied = true;
                    let reply = Tuple::new("eProvResults", (node + 1) % 4, vec![Value::Int(7)]);
                    engine.send_tuple(node, (node + 1) % 4, reply, 0);
                }
            }
        }

        let run = |shards: usize| {
            let topo = Topology::paper_example();
            let mut engine = Engine::new(
                programs::mincost(),
                topo,
                EngineConfig {
                    shards: ShardConfig::with_shards(shards),
                    ..Default::default()
                },
            );
            seed_links(&mut engine);
            engine.run_to_fixpoint();
            for n in 0..4u32 {
                let q = Tuple::new("eProvQuery", n, vec![Value::Int(n as i64)]);
                engine.send_tuple(n, (n + 1) % 4, q, 0);
            }
            let mut sink = Collect {
                seen: Vec::new(),
                replied: false,
            };
            let stats = engine.run_until_interactive(f64::INFINITY, &mut sink);
            (sink.seen, stats.external)
        };
        let (seq, externals) = run(1);
        // All four queries plus the sink's reply were surfaced (not dropped).
        assert_eq!(externals, 5);
        assert_eq!(seq.len(), 5);
        assert!(seq.iter().any(|(_, t, _)| t.relation == "eProvResults"));
        // And the interactive loop is shard-count independent like step().
        assert_eq!(seq, run(3).0);
    }

    #[test]
    fn run_until_interactive_respects_the_time_limit() {
        struct Ignore;
        impl crate::plugin::ExternalSink for Ignore {
            fn on_external(&mut self, _: &mut Engine, _: NodeId, _: Arc<Tuple>, _: f64, _: bool) {}
        }
        let topo = Topology::transit_stub(1, 5);
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        let stats = engine.run_until_interactive(0.01, &mut Ignore);
        assert!(engine.now() <= 0.011);
        assert!(stats.steps > 0);
        assert!(engine.peek_time().is_some(), "events must remain queued");
    }

    #[test]
    fn sharded_step_merges_queues_in_sequential_order() {
        // Drive two engines purely through step() and compare the surfaced
        // external events (the query layer depends on this order).
        let run = |shards: usize| {
            let topo = Topology::paper_example();
            let mut engine = Engine::new(
                programs::mincost(),
                topo,
                EngineConfig {
                    shards: ShardConfig::with_shards(shards),
                    ..Default::default()
                },
            );
            seed_links(&mut engine);
            engine.run_to_fixpoint();
            for n in 0..4u32 {
                let q = Tuple::new("eProvQuery", n, vec![Value::Int(n as i64)]);
                engine.send_tuple(n, (n + 1) % 4, q, 0);
            }
            let mut surfaced = Vec::new();
            loop {
                match engine.step() {
                    Step::Idle => break,
                    Step::Handled => {}
                    Step::External {
                        node, tuple, time, ..
                    } => surfaced.push((node, tuple, time)),
                }
            }
            surfaced
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(1), run(4));
    }
}
