//! The distributed NDlog engine.
//!
//! The engine executes a (localized, normalized) NDlog [`Program`] over the
//! discrete-event simulator using pipelined semi-naïve evaluation: every
//! tuple insertion or deletion is a *delta* processed one at a time from the
//! per-node FIFO (modelled by the global simulated-time event queue).  A
//! delta is applied to the local table, and — if the visible state changed —
//! joined against the other body predicates of every rule it can trigger,
//! producing new deltas that are either enqueued locally or shipped to the
//! head's location specifier over the network.
//!
//! Deletions flow through exactly the same machinery with inverted polarity
//! (the deletion delta rules of §4.2), relying on the derivation counts kept
//! by [`crate::table::Table`] so that a tuple only disappears when its last
//! derivation is gone.

use crate::plugin::AnnotationPolicy;
use crate::table::{DeleteEffect, InsertEffect, TableStore};
use exspan_ndlog::ast::{AggFunc, Atom, BodyItem, HeadArg, Program, Rule, Term};
use exspan_ndlog::eval::{eval_cmp, eval_expr, Bindings, FuncRegistry};
use exspan_ndlog::is_event_predicate;
use exspan_netsim::{Simulator, Topology, TrafficStats};
use exspan_types::{wire, NodeId, Tuple, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Name of the internal event used to trigger aggregate-group recomputation.
/// The `$` prefix keeps it out of the namespace of user-defined relations.
const AGG_RECOMPUTE_EVENT: &str = "$aggRecompute";

/// Message payload exchanged between nodes (and enqueued locally).
#[derive(Debug, Clone)]
pub enum Payload {
    /// A tuple delta: insertion (`insert = true`) or deletion of `tuple` at
    /// the destination node.
    Delta {
        /// The tuple being inserted or deleted.
        tuple: Tuple,
        /// Polarity of the delta.
        insert: bool,
    },
}

/// Result of processing one simulator event.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// The event was consumed by the engine.
    Handled,
    /// An event tuple arrived for which the engine has no rules.  Higher
    /// layers (the provenance query protocol) handle these.
    External {
        /// Node at which the tuple arrived.
        node: NodeId,
        /// The tuple itself.
        tuple: Tuple,
        /// Simulated arrival time.
        time: f64,
        /// Polarity of the delta.
        insert: bool,
    },
    /// The event queue is empty.
    Idle,
}

/// Statistics about a fixpoint computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixpointStats {
    /// Simulated time at which the last delta was processed.
    pub fixpoint_time: f64,
    /// Number of events processed.
    pub steps: u64,
    /// Number of external (unhandled) tuples encountered and dropped.
    pub external: u64,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// When `true`, the engine natively maintains `prov` and `ruleExec`
    /// entries for *aggregate* rule firings (tracing MIN/MAX outputs to the
    /// winning input tuple, §4.2.2).  Non-aggregate rules maintain provenance
    /// through the rewritten NDlog rules themselves; aggregates cannot be
    /// expressed that way and are instrumented here instead.
    pub aggregate_provenance: bool,
    /// Safety limit on processed events for a single `run_*` call.
    pub max_steps: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            aggregate_provenance: false,
            max_steps: 200_000_000,
        }
    }
}

/// The distributed declarative-networking engine.
pub struct Engine {
    rules: Arc<Vec<Rule>>,
    /// relation name -> list of (rule index, trigger atom index)
    triggers: HashMap<String, Vec<(usize, usize)>>,
    store: TableStore,
    sim: Simulator<Payload>,
    funcs: FuncRegistry,
    config: EngineConfig,
    annotation: Option<Box<dyn AnnotationPolicy>>,
    /// Bookkeeping for aggregate provenance: (node, relation, group key) ->
    /// (prov tuple, ruleExec tuple) currently installed for that group.
    agg_prov: HashMap<(NodeId, String, Vec<Value>), (Tuple, Tuple)>,
    last_delta_time: f64,
    externals_seen: u64,
    processed: u64,
}

impl Engine {
    /// Creates an engine executing `program` over `topology`.
    pub fn new(program: Program, topology: Topology, config: EngineConfig) -> Self {
        let program = program.normalize();
        let mut triggers: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        for (ri, rule) in program.rules.iter().enumerate() {
            let mut seen_for_rule: HashMap<&str, usize> = HashMap::new();
            for (ai, item) in rule.body.iter().enumerate() {
                if let BodyItem::Atom(a) = item {
                    // Register every occurrence as a trigger position; the
                    // same relation occurring twice registers twice.
                    triggers
                        .entry(a.relation.clone())
                        .or_default()
                        .push((ri, ai));
                    *seen_for_rule.entry(a.relation.as_str()).or_default() += 1;
                }
            }
        }
        let keys: HashMap<String, Vec<usize>> = program
            .tables
            .iter()
            .map(|t| (t.relation.clone(), t.keys.clone()))
            .collect();
        Engine {
            rules: Arc::new(program.rules),
            triggers,
            store: TableStore::new(keys),
            sim: Simulator::new(topology),
            funcs: FuncRegistry::new(),
            config,
            annotation: None,
            agg_prov: HashMap::new(),
            last_delta_time: 0.0,
            externals_seen: 0,
            processed: 0,
        }
    }

    /// Installs an [`AnnotationPolicy`] (e.g. value-based provenance).
    pub fn set_annotation_policy(&mut self, policy: Box<dyn AnnotationPolicy>) {
        self.annotation = Some(policy);
    }

    /// Removes and returns the annotation policy, if any.
    pub fn take_annotation_policy(&mut self) -> Option<Box<dyn AnnotationPolicy>> {
        self.annotation.take()
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.sim.now()
    }

    /// Time at which the last delta was processed (the fixpoint time once the
    /// queue drains).
    pub fn last_activity(&self) -> f64 {
        self.last_delta_time
    }

    /// Traffic statistics of the underlying simulator.
    pub fn stats(&self) -> &TrafficStats {
        self.sim.stats()
    }

    /// The network topology (mutable, for churn).
    pub fn topology_mut(&mut self) -> &mut Topology {
        self.sim.topology_mut()
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        self.sim.topology()
    }

    /// Visible tuples of `relation` at `node`.
    pub fn tuples(&self, node: NodeId, relation: &str) -> Vec<Tuple> {
        self.store.tuples(node, relation)
    }

    /// Visible tuples of `relation` across all nodes.
    pub fn tuples_everywhere(&self, relation: &str) -> Vec<Tuple> {
        self.store.tuples_everywhere(relation)
    }

    /// Derivation count of an exact tuple at its own location.
    pub fn derivation_count(&self, tuple: &Tuple) -> usize {
        self.store
            .table(tuple.location, &tuple.relation)
            .map(|t| t.count(tuple))
            .unwrap_or(0)
    }

    /// Total number of stored tuples across all nodes and relations.
    pub fn total_tuples(&self) -> usize {
        self.store.total_tuples()
    }

    /// Inserts a base tuple at `node` now (processed when its event fires).
    pub fn insert_base(&mut self, node: NodeId, tuple: Tuple) {
        if let Some(policy) = self.annotation.as_mut() {
            policy.on_base(node, &tuple, true);
        }
        self.sim.schedule_at(
            self.sim.now(),
            node,
            Payload::Delta {
                tuple,
                insert: true,
            },
        );
    }

    /// Deletes a base tuple at `node` now.
    pub fn delete_base(&mut self, node: NodeId, tuple: Tuple) {
        if let Some(policy) = self.annotation.as_mut() {
            policy.on_base(node, &tuple, false);
        }
        self.sim.schedule_at(
            self.sim.now(),
            node,
            Payload::Delta {
                tuple,
                insert: false,
            },
        );
    }

    /// Schedules a delta at an absolute simulated time (used by experiment
    /// drivers for churn and data-plane workloads).
    pub fn schedule_delta(&mut self, time: f64, node: NodeId, tuple: Tuple, insert: bool) {
        if let Some(policy) = self.annotation.as_mut() {
            // Scheduled base-level changes are reported to the policy when
            // they are scheduled; derived deltas never go through here.
            policy.on_base(node, &tuple, insert);
        }
        self.sim
            .schedule_at(time, node, Payload::Delta { tuple, insert });
    }

    /// Sends a tuple from `from` to `to` on behalf of a higher layer (the
    /// provenance query protocol), charging `extra_bytes` of annotation in
    /// addition to the tuple's wire size.
    pub fn send_tuple(&mut self, from: NodeId, to: NodeId, tuple: Tuple, extra_bytes: usize) {
        let bytes = wire::message_size(std::slice::from_ref(&tuple), extra_bytes);
        self.sim.send(
            from,
            to,
            bytes,
            Payload::Delta {
                tuple,
                insert: true,
            },
        );
    }

    /// Directly stores a tuple at a node without triggering any rules.
    /// Used by higher layers for bookkeeping tables (e.g. query caches).
    pub fn store_silent(&mut self, node: NodeId, tuple: &Tuple) {
        self.store.table_mut(node, &tuple.relation).insert(tuple);
    }

    /// Directly removes a tuple at a node without triggering any rules.
    pub fn remove_silent(&mut self, node: NodeId, tuple: &Tuple) {
        self.store.table_mut(node, &tuple.relation).delete(tuple);
    }

    /// Processes the next event.
    pub fn step(&mut self) -> Step {
        let Some(msg) = self.sim.pop() else {
            return Step::Idle;
        };
        self.processed += 1;
        let time = msg.time;
        match msg.payload {
            Payload::Delta { tuple, insert } => {
                let node = msg.to;
                if tuple.relation == AGG_RECOMPUTE_EVENT {
                    self.last_delta_time = time;
                    self.handle_aggregate_recompute(node, &tuple);
                    return Step::Handled;
                }
                if self.is_external(&tuple.relation) {
                    self.externals_seen += 1;
                    return Step::External {
                        node,
                        tuple,
                        time,
                        insert,
                    };
                }
                self.last_delta_time = time;
                self.process_delta(node, tuple, insert);
                Step::Handled
            }
        }
    }

    /// Whether tuples of `relation` have no handler inside the engine: event
    /// predicates that trigger no rule are surfaced to the caller.
    fn is_external(&self, relation: &str) -> bool {
        is_event_predicate(relation) && !self.triggers.contains_key(relation)
    }

    /// Runs until the event queue is empty (global fixpoint).
    pub fn run_to_fixpoint(&mut self) -> FixpointStats {
        self.run_until(f64::INFINITY)
    }

    /// Runs until the next event would occur after `time_limit` (or the queue
    /// empties).  External tuples are dropped and counted.
    pub fn run_until(&mut self, time_limit: f64) -> FixpointStats {
        let mut steps = 0u64;
        let mut external = 0u64;
        while steps < self.config.max_steps {
            match self.sim.peek_time() {
                None => break,
                Some(t) if t > time_limit => break,
                Some(_) => {}
            }
            match self.step() {
                Step::Idle => break,
                Step::External { .. } => {
                    external += 1;
                    steps += 1;
                }
                Step::Handled => {
                    steps += 1;
                }
            }
        }
        FixpointStats {
            fixpoint_time: self.last_delta_time,
            steps,
            external,
        }
    }

    // ------------------------------------------------------------------
    // Delta processing
    // ------------------------------------------------------------------

    fn process_delta(&mut self, node: NodeId, tuple: Tuple, insert: bool) {
        let is_event = is_event_predicate(&tuple.relation);
        let mut fire = true;
        if !is_event {
            let table = self.store.table_mut(node, &tuple.relation);
            if insert {
                match table.insert(&tuple) {
                    InsertEffect::Added => {}
                    InsertEffect::Duplicate => fire = false,
                    InsertEffect::Replaced(old) => {
                        // Cascade the replaced row as a deletion before
                        // propagating the new insertion.
                        self.fire_rules(node, &old, false);
                    }
                }
            } else {
                match table.delete(&tuple) {
                    DeleteEffect::Removed => {}
                    DeleteEffect::Decremented | DeleteEffect::Missing => fire = false,
                }
            }
        }
        if fire {
            self.fire_rules(node, &tuple, insert);
        }
    }

    fn fire_rules(&mut self, node: NodeId, tuple: &Tuple, insert: bool) {
        let Some(trigger_list) = self.triggers.get(&tuple.relation).cloned() else {
            return;
        };
        let rules = Arc::clone(&self.rules);
        for (rule_idx, atom_idx) in trigger_list {
            let rule = &rules[rule_idx];
            if rule.is_aggregate() {
                self.schedule_aggregate_recompute(rule, node, tuple, atom_idx);
            } else {
                self.fire_rule(rule, node, tuple, atom_idx, insert);
            }
        }
    }

    /// Fires a non-aggregate rule triggered by `tuple` bound at body atom
    /// `atom_idx`, emitting one head delta per satisfying assignment.
    fn fire_rule(
        &mut self,
        rule: &Rule,
        node: NodeId,
        tuple: &Tuple,
        atom_idx: usize,
        insert: bool,
    ) {
        let derivations = self.evaluate_rule_with_trigger(rule, node, tuple, atom_idx);
        for (inputs, head) in derivations {
            self.emit_derivation(rule, node, &inputs, head, insert);
        }
    }

    /// Evaluates a rule body with `tuple` bound at `atom_idx`, returning the
    /// grounded input tuples (in body-atom order) and the head tuple for each
    /// satisfying assignment.
    fn evaluate_rule_with_trigger(
        &self,
        rule: &Rule,
        node: NodeId,
        tuple: &Tuple,
        atom_idx: usize,
    ) -> Vec<(Vec<Tuple>, Tuple)> {
        let BodyItem::Atom(trigger_atom) = &rule.body[atom_idx] else {
            return Vec::new();
        };
        let Some(mut bindings) = unify_atom(trigger_atom, tuple, &Bindings::new()) else {
            return Vec::new();
        };
        // The body is localized: the trigger's location must be this node.
        if tuple.location != node {
            return Vec::new();
        }
        // Ensure the location variable is bound to this node.
        if let Term::Var(v) = &trigger_atom.location {
            bindings.insert(v.clone(), Value::Node(node));
        }

        let other_atoms: Vec<(usize, &Atom)> = rule
            .body
            .iter()
            .enumerate()
            .filter_map(|(i, item)| match item {
                BodyItem::Atom(a) if i != atom_idx => Some((i, a)),
                _ => None,
            })
            .collect();

        let mut results = Vec::new();
        let mut partial: Vec<(usize, Tuple)> = vec![(atom_idx, tuple.clone())];
        self.join_remaining(
            rule,
            node,
            &other_atoms,
            0,
            bindings,
            &mut partial,
            &mut results,
        );
        results
    }

    #[allow(clippy::too_many_arguments)]
    fn join_remaining(
        &self,
        rule: &Rule,
        node: NodeId,
        atoms: &[(usize, &Atom)],
        depth: usize,
        bindings: Bindings,
        partial: &mut Vec<(usize, Tuple)>,
        results: &mut Vec<(Vec<Tuple>, Tuple)>,
    ) {
        if depth == atoms.len() {
            if let Some((inputs, head)) = self.finish_rule(rule, node, bindings, partial) {
                results.push((inputs, head));
            }
            return;
        }
        let (orig_idx, atom) = atoms[depth];
        // Event predicates are transient: they cannot be joined from storage.
        if is_event_predicate(&atom.relation) {
            return;
        }
        let Some(table) = self.store.table(node, &atom.relation) else {
            return;
        };
        for candidate in table.scan() {
            if let Some(new_bindings) = unify_atom(atom, candidate, &bindings) {
                partial.push((orig_idx, candidate.clone()));
                self.join_remaining(rule, node, atoms, depth + 1, new_bindings, partial, results);
                partial.pop();
            }
        }
    }

    /// Applies assignments and constraints, then constructs the head tuple.
    fn finish_rule(
        &self,
        rule: &Rule,
        _node: NodeId,
        mut bindings: Bindings,
        partial: &[(usize, Tuple)],
    ) -> Option<(Vec<Tuple>, Tuple)> {
        for item in &rule.body {
            match item {
                BodyItem::Assign(var, expr) => {
                    let value = eval_expr(expr, &bindings, &self.funcs).ok()?;
                    // An assignment to an already-bound variable acts as an
                    // equality constraint (standard Datalog convention).
                    if let Some(existing) = bindings.get(var) {
                        if *existing != value {
                            return None;
                        }
                    } else {
                        bindings.insert(var.clone(), value);
                    }
                }
                BodyItem::Constraint(op, lhs, rhs) => {
                    let l = eval_expr(lhs, &bindings, &self.funcs).ok()?;
                    let r = eval_expr(rhs, &bindings, &self.funcs).ok()?;
                    if !eval_cmp(*op, &l, &r).ok()? {
                        return None;
                    }
                }
                BodyItem::Atom(_) => {}
            }
        }
        let head = self.build_head(rule, &bindings)?;
        // Order the grounded inputs by their body-atom position.
        let mut inputs: Vec<(usize, Tuple)> = partial.to_vec();
        inputs.sort_by_key(|(i, _)| *i);
        Some((inputs.into_iter().map(|(_, t)| t).collect(), head))
    }

    fn build_head(&self, rule: &Rule, bindings: &Bindings) -> Option<Tuple> {
        let loc = match &rule.head.location {
            Term::Var(v) => bindings.get(v)?.as_node().ok()?,
            Term::Const(Value::Node(n)) => *n,
            Term::Const(Value::Int(n)) => *n as NodeId,
            Term::Const(_) => return None,
        };
        let mut values = Vec::with_capacity(rule.head.args.len());
        for arg in &rule.head.args {
            match arg {
                HeadArg::Term(Term::Var(v)) => values.push(bindings.get(v)?.clone()),
                HeadArg::Term(Term::Const(c)) => values.push(c.clone()),
                HeadArg::Expr(e) => values.push(eval_expr(e, bindings, &self.funcs).ok()?),
                HeadArg::Aggregate(_, _) => return None,
            }
        }
        Some(Tuple::new(rule.head.relation.clone(), loc, values))
    }

    /// Emits the head delta of a (non-aggregate) rule firing: notifies the
    /// annotation policy, then enqueues locally or ships to the head node.
    fn emit_derivation(
        &mut self,
        rule: &Rule,
        node: NodeId,
        inputs: &[Tuple],
        head: Tuple,
        insert: bool,
    ) {
        if let Some(policy) = self.annotation.as_mut() {
            policy.on_derivation(node, &rule.label, inputs, &head, insert);
        }
        self.dispatch_delta(node, head, insert);
    }

    /// Sends or locally enqueues a delta for `head` produced at `node`.
    fn dispatch_delta(&mut self, node: NodeId, head: Tuple, insert: bool) {
        let dest = head.location;
        if dest == node {
            self.sim.schedule_local(
                node,
                Payload::Delta {
                    tuple: head,
                    insert,
                },
            );
        } else {
            let annotation_bytes = match self.annotation.as_mut() {
                Some(policy) => policy.annotation_bytes(node, dest, &head),
                None => 0,
            };
            let bytes = wire::message_size(std::slice::from_ref(&head), annotation_bytes);
            self.sim.send(
                node,
                dest,
                bytes,
                Payload::Delta {
                    tuple: head,
                    insert,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Aggregates
    // ------------------------------------------------------------------

    /// Schedules a (local) recomputation of the aggregate group(s) affected
    /// by a delta.
    ///
    /// The recomputation itself runs as a separate queued event
    /// ([`AGG_RECOMPUTE_EVENT`]) rather than synchronously: this guarantees
    /// that any output deltas dispatched by *earlier* recomputations of the
    /// same group have already been applied to the head table when the
    /// comparison against the currently stored output is made.  A synchronous
    /// recomputation could read a stale output value and emit contradictory
    /// retractions, which prevents convergence.
    fn schedule_aggregate_recompute(
        &mut self,
        rule: &Rule,
        node: NodeId,
        tuple: &Tuple,
        atom_idx: usize,
    ) {
        let (_, _, agg_pos) = match rule.head.aggregate() {
            Some(a) => a,
            None => return,
        };
        let BodyItem::Atom(trigger_atom) = &rule.body[atom_idx] else {
            return;
        };
        let Some(bindings) = unify_atom(trigger_atom, tuple, &Bindings::new()) else {
            return;
        };
        if tuple.location != node {
            return;
        }
        // An empty group key means "recompute every group of this rule".
        let group_key = self.group_key(rule, &bindings, agg_pos).unwrap_or_default();
        let event = Tuple::new(
            AGG_RECOMPUTE_EVENT,
            node,
            vec![Value::Str(rule.label.clone()), Value::List(group_key)],
        );
        self.sim.schedule_local(
            node,
            Payload::Delta {
                tuple: event,
                insert: true,
            },
        );
    }

    /// Handles a queued aggregate-recomputation event.
    fn handle_aggregate_recompute(&mut self, node: NodeId, event: &Tuple) {
        let Ok(label) = event.values[0].as_str().map(str::to_string) else {
            return;
        };
        let Ok(group_key) = event.values[1].as_list().map(<[Value]>::to_vec) else {
            return;
        };
        let rules = Arc::clone(&self.rules);
        let Some(rule) = rules.iter().find(|r| r.label == label) else {
            return;
        };
        let Some((func, agg_var, agg_pos)) = rule.head.aggregate() else {
            return;
        };
        if group_key.is_empty() {
            let groups = self.all_groups(rule, node, agg_pos);
            for g in groups {
                self.recompute_group(rule, node, func, agg_var, agg_pos, &g);
            }
        } else {
            self.recompute_group(rule, node, func, agg_var, agg_pos, &group_key);
        }
    }

    /// The group key is the head location plus every non-aggregate head
    /// argument, evaluated under `bindings`.
    fn group_key(&self, rule: &Rule, bindings: &Bindings, agg_pos: usize) -> Option<Vec<Value>> {
        let mut key = Vec::new();
        match &rule.head.location {
            Term::Var(v) => key.push(bindings.get(v)?.clone()),
            Term::Const(c) => key.push(c.clone()),
        }
        for (i, arg) in rule.head.args.iter().enumerate() {
            if i == agg_pos {
                continue;
            }
            match arg {
                HeadArg::Term(Term::Var(v)) => key.push(bindings.get(v)?.clone()),
                HeadArg::Term(Term::Const(c)) => key.push(c.clone()),
                _ => return None,
            }
        }
        Some(key)
    }

    /// Enumerates all group keys derivable at `node` for an aggregate rule.
    fn all_groups(&self, rule: &Rule, node: NodeId, agg_pos: usize) -> Vec<Vec<Value>> {
        let mut groups: Vec<Vec<Value>> = Vec::new();
        for (bindings, _inputs) in self.evaluate_rule_body(rule, node, &Bindings::new()) {
            if let Some(k) = self.group_key(rule, &bindings, agg_pos) {
                if !groups.contains(&k) {
                    groups.push(k);
                }
            }
        }
        groups
    }

    /// Pre-binds the head variables that form a group key, so aggregate
    /// recomputation only enumerates the affected group rather than the whole
    /// table (essential for performance: one delta must not trigger a scan of
    /// every group at the node).
    fn group_bindings(&self, rule: &Rule, group_key: &[Value], agg_pos: usize) -> Bindings {
        let mut bindings = Bindings::new();
        if let Term::Var(v) = &rule.head.location {
            bindings.insert(v.clone(), group_key[0].clone());
        }
        let mut key_iter = group_key.iter().skip(1);
        for (i, arg) in rule.head.args.iter().enumerate() {
            if i == agg_pos {
                continue;
            }
            let key_val = key_iter.next();
            if let (HeadArg::Term(Term::Var(v)), Some(value)) = (arg, key_val) {
                bindings.insert(v.clone(), value.clone());
            }
        }
        bindings
    }

    /// Evaluates the whole rule body at `node` under `initial` bindings,
    /// returning every satisfying assignment with its grounded input tuples.
    fn evaluate_rule_body(
        &self,
        rule: &Rule,
        node: NodeId,
        initial: &Bindings,
    ) -> Vec<(Bindings, Vec<Tuple>)> {
        let atoms: Vec<(usize, &Atom)> = rule
            .body
            .iter()
            .enumerate()
            .filter_map(|(i, item)| match item {
                BodyItem::Atom(a) => Some((i, a)),
                _ => None,
            })
            .collect();
        let mut results = Vec::new();
        self.enumerate_bindings(
            rule,
            node,
            &atoms,
            0,
            initial.clone(),
            &mut Vec::new(),
            &mut results,
        );
        results
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_bindings(
        &self,
        rule: &Rule,
        node: NodeId,
        atoms: &[(usize, &Atom)],
        depth: usize,
        bindings: Bindings,
        partial: &mut Vec<Tuple>,
        results: &mut Vec<(Bindings, Vec<Tuple>)>,
    ) {
        if depth == atoms.len() {
            // Apply assignments and constraints.
            let mut complete = bindings;
            for item in &rule.body {
                match item {
                    BodyItem::Assign(var, expr) => {
                        let Ok(value) = eval_expr(expr, &complete, &self.funcs) else {
                            return;
                        };
                        if let Some(existing) = complete.get(var) {
                            if *existing != value {
                                return;
                            }
                        } else {
                            complete.insert(var.clone(), value);
                        }
                    }
                    BodyItem::Constraint(op, lhs, rhs) => {
                        let (Ok(l), Ok(r)) = (
                            eval_expr(lhs, &complete, &self.funcs),
                            eval_expr(rhs, &complete, &self.funcs),
                        ) else {
                            return;
                        };
                        if !eval_cmp(*op, &l, &r).unwrap_or(false) {
                            return;
                        }
                    }
                    BodyItem::Atom(_) => {}
                }
            }
            results.push((complete, partial.clone()));
            return;
        }
        let (_, atom) = atoms[depth];
        if is_event_predicate(&atom.relation) {
            return;
        }
        let Some(table) = self.store.table(node, &atom.relation) else {
            return;
        };
        for candidate in table.scan() {
            if candidate.location != node {
                continue;
            }
            if let Some(new_bindings) = unify_atom(atom, candidate, &bindings) {
                partial.push(candidate.clone());
                self.enumerate_bindings(
                    rule,
                    node,
                    atoms,
                    depth + 1,
                    new_bindings,
                    partial,
                    results,
                );
                partial.pop();
            }
        }
    }

    /// Recomputes one aggregate group and reconciles its output tuple.
    fn recompute_group(
        &mut self,
        rule: &Rule,
        node: NodeId,
        func: AggFunc,
        agg_var: Option<&str>,
        agg_pos: usize,
        group_key: &[Value],
    ) {
        // Gather all bindings for this group.  Pre-binding the group-key
        // variables restricts the enumeration to the affected group.
        let initial = self.group_bindings(rule, group_key, agg_pos);
        let all = self.evaluate_rule_body(rule, node, &initial);
        let mut in_group: Vec<(Bindings, Vec<Tuple>)> = Vec::new();
        for (b, inputs) in all {
            if let Some(k) = self.group_key(rule, &b, agg_pos) {
                if k == group_key {
                    in_group.push((b, inputs));
                }
            }
        }

        // Compute the aggregate value and the winning binding (for MIN/MAX
        // provenance, the winning tuple is the provenance child; for COUNT the
        // first binding is used as a representative).
        let new_output: Option<(Value, usize)> = match func {
            AggFunc::Count => {
                if in_group.is_empty() {
                    None
                } else {
                    Some((Value::Int(in_group.len() as i64), 0))
                }
            }
            AggFunc::Min | AggFunc::Max => {
                let Some(var) = agg_var else {
                    return;
                };
                let mut best: Option<(i64, usize)> = None;
                for (i, (b, _)) in in_group.iter().enumerate() {
                    let Some(Value::Int(v)) = b.get(var).cloned() else {
                        continue;
                    };
                    best = match best {
                        None => Some((v, i)),
                        Some((cur, ci)) => {
                            let better = match func {
                                AggFunc::Min => v < cur,
                                AggFunc::Max => v > cur,
                                AggFunc::Count => false,
                            };
                            if better {
                                Some((v, i))
                            } else {
                                Some((cur, ci))
                            }
                        }
                    };
                }
                best.map(|(v, i)| (Value::Int(v), i))
            }
        };

        // Current output for this group, if any.
        let loc = match &group_key[0] {
            Value::Node(n) => *n,
            Value::Int(n) => *n as NodeId,
            _ => return,
        };
        let current = self.find_group_output(rule, node, group_key, agg_pos);

        let new_tuple = new_output.as_ref().map(|(value, _)| {
            let mut values = Vec::with_capacity(rule.head.args.len());
            let mut key_iter = group_key.iter().skip(1);
            for (i, _) in rule.head.args.iter().enumerate() {
                if i == agg_pos {
                    values.push(value.clone());
                } else {
                    values.push(
                        key_iter
                            .next()
                            .expect("group key covers non-agg args")
                            .clone(),
                    );
                }
            }
            Tuple::new(rule.head.relation.clone(), loc, values)
        });

        if current == new_tuple {
            return;
        }

        // Retract the old output (and its aggregate-provenance entries).
        if let Some(old) = current {
            if self.config.aggregate_provenance {
                if let Some((prov_t, exec_t)) =
                    self.agg_prov
                        .remove(&(node, rule.head.relation.clone(), group_key.to_vec()))
                {
                    self.dispatch_delta(node, prov_t, false);
                    self.dispatch_delta(node, exec_t, false);
                }
            }
            if let Some(policy) = self.annotation.as_mut() {
                policy.on_derivation(node, &rule.label, &[], &old, false);
            }
            self.dispatch_delta(node, old, false);
        }

        // Assert the new output.
        if let (Some(new_t), Some((_, winner_idx))) = (new_tuple, new_output) {
            let winning_inputs = in_group
                .get(winner_idx)
                .map(|(_, inputs)| inputs.clone())
                .unwrap_or_default();
            if let Some(policy) = self.annotation.as_mut() {
                policy.on_derivation(node, &rule.label, &winning_inputs, &new_t, true);
            }
            if self.config.aggregate_provenance {
                let vids: Vec<_> = winning_inputs.iter().map(Tuple::vid).collect();
                let rid = exspan_types::tuple::rule_exec_id(&rule.label, node, &vids);
                let exec_t = Tuple::new(
                    "ruleExec",
                    node,
                    vec![
                        Value::from_digest(rid),
                        Value::Str(rule.label.clone()),
                        Value::List(vids.iter().map(|v| Value::Digest(v.0)).collect()),
                    ],
                );
                let prov_t = Tuple::new(
                    "prov",
                    new_t.location,
                    vec![
                        Value::from_digest(new_t.vid()),
                        Value::from_digest(rid),
                        Value::Node(node),
                    ],
                );
                self.agg_prov.insert(
                    (node, rule.head.relation.clone(), group_key.to_vec()),
                    (prov_t.clone(), exec_t.clone()),
                );
                self.dispatch_delta(node, exec_t, true);
                self.dispatch_delta(node, prov_t, true);
            }
            self.dispatch_delta(node, new_t, true);
        }
    }

    /// Finds the currently stored output tuple of an aggregate group.
    fn find_group_output(
        &self,
        rule: &Rule,
        node: NodeId,
        group_key: &[Value],
        agg_pos: usize,
    ) -> Option<Tuple> {
        let table = self.store.table(node, &rule.head.relation)?;
        let loc = match &group_key[0] {
            Value::Node(n) => *n,
            Value::Int(n) => *n as NodeId,
            _ => return None,
        };
        table
            .scan()
            .find(|t| {
                if t.location != loc {
                    return false;
                }
                let mut key_iter = group_key.iter().skip(1);
                for (i, v) in t.values.iter().enumerate() {
                    if i == agg_pos {
                        continue;
                    }
                    match key_iter.next() {
                        Some(k) if k == v => {}
                        _ => return false,
                    }
                }
                true
            })
            .cloned()
    }
}

/// Unifies an atom against a tuple under existing bindings, returning the
/// extended bindings on success.
fn unify_atom(atom: &Atom, tuple: &Tuple, bindings: &Bindings) -> Option<Bindings> {
    if atom.relation != tuple.relation || atom.args.len() != tuple.values.len() {
        return None;
    }
    let mut out = bindings.clone();
    // Location.
    match &atom.location {
        Term::Var(v) => match out.get(v) {
            Some(existing) => {
                if *existing != Value::Node(tuple.location) {
                    return None;
                }
            }
            None => {
                out.insert(v.clone(), Value::Node(tuple.location));
            }
        },
        Term::Const(c) => {
            if *c != Value::Node(tuple.location) && *c != Value::Int(tuple.location as i64) {
                return None;
            }
        }
    }
    // Arguments.
    for (term, value) in atom.args.iter().zip(tuple.values.iter()) {
        match term {
            Term::Var(v) => match out.get(v) {
                Some(existing) => {
                    if existing != value {
                        return None;
                    }
                }
                None => {
                    out.insert(v.clone(), value.clone());
                }
            },
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exspan_ndlog::programs;
    use exspan_netsim::Topology;

    fn link(s: NodeId, d: NodeId, c: i64) -> Tuple {
        Tuple::new("link", s, vec![Value::Node(d), Value::Int(c)])
    }

    fn best(s: NodeId, d: NodeId, c: i64) -> Tuple {
        Tuple::new("bestPathCost", s, vec![Value::Node(d), Value::Int(c)])
    }

    /// Inserts both directions of every link of the topology as base tuples
    /// (the paper assumes symmetric links).
    fn seed_links(engine: &mut Engine) {
        let links: Vec<(NodeId, NodeId, i64)> = engine
            .topology()
            .links()
            .map(|(a, b, p)| (a, b, p.cost))
            .collect();
        for (a, b, cost) in links {
            engine.insert_base(a, link(a, b, cost));
            engine.insert_base(b, link(b, a, cost));
        }
    }

    #[test]
    fn unify_binds_and_checks_consistency() {
        let atom = Atom::new("link", Term::var("Z"), vec![Term::var("S"), Term::var("C")]);
        let t = link(1, 2, 3);
        let b = unify_atom(&atom, &t, &Bindings::new()).unwrap();
        assert_eq!(b["Z"], Value::Node(1));
        assert_eq!(b["S"], Value::Node(2));
        assert_eq!(b["C"], Value::Int(3));
        // Conflicting pre-binding fails.
        let mut pre = Bindings::new();
        pre.insert("S".into(), Value::Node(9));
        assert!(unify_atom(&atom, &t, &pre).is_none());
        // Constant mismatch fails.
        let atom2 = Atom::new(
            "link",
            Term::var("Z"),
            vec![Term::var("S"), Term::constant(4i64)],
        );
        assert!(unify_atom(&atom2, &t, &Bindings::new()).is_none());
        // Relation mismatch fails.
        let atom3 = Atom::new("path", Term::var("Z"), vec![Term::var("S"), Term::var("C")]);
        assert!(unify_atom(&atom3, &t, &Bindings::new()).is_none());
    }

    #[test]
    fn mincost_on_paper_topology_matches_figure_3() {
        // Figure 3: best path cost a->c is 5 (direct, or via b: 3+2=5).
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        let stats = engine.run_to_fixpoint();
        assert!(stats.steps > 0);

        // a = node 0, b = 1, c = 2, d = 3.
        let a_best = engine.tuples(0, "bestPathCost");
        let get = |d: NodeId| -> i64 {
            a_best
                .iter()
                .find(|t| t.values[0] == Value::Node(d))
                .map(|t| t.values[1].as_int().unwrap())
                .unwrap_or(i64::MAX)
        };
        assert_eq!(get(1), 3); // a->b direct
        assert_eq!(get(2), 5); // a->c direct or via b
        assert_eq!(get(3), 8); // a->b->c->d = 3+2+3
                               // b's best cost to c is 2.
        let b_best = engine.tuples(1, "bestPathCost");
        assert!(b_best.contains(&best(1, 2, 2)));
        // pathCost(@a,c,5) has two derivations (Figure 4).
        let pc = Tuple::new("pathCost", 0, vec![Value::Node(2), Value::Int(5)]);
        assert_eq!(engine.derivation_count(&pc), 2);
    }

    #[test]
    fn mincost_handles_link_deletion_incrementally() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        // Delete the direct a-c link (cost 5) in both directions.
        engine.delete_base(0, link(0, 2, 5));
        engine.delete_base(2, link(2, 0, 5));
        engine.run_to_fixpoint();
        // Best cost a->c remains 5 via b (3+2), but now with one derivation.
        let a_best = engine.tuples(0, "bestPathCost");
        assert!(a_best.contains(&best(0, 2, 5)));
        let pc = Tuple::new("pathCost", 0, vec![Value::Node(2), Value::Int(5)]);
        assert_eq!(engine.derivation_count(&pc), 1);
        // Now delete a-b as well: a's only neighbour left is... none (a had b and c).
        engine.delete_base(0, link(0, 1, 3));
        engine.delete_base(1, link(1, 0, 3));
        engine.run_to_fixpoint();
        let a_best = engine.tuples(0, "bestPathCost");
        assert!(
            a_best.is_empty(),
            "a is disconnected, all bestPathCost tuples must be retracted, got {a_best:?}"
        );
    }

    #[test]
    fn mincost_cost_improvement_replaces_keyed_row() {
        // Line 0-1-2 with expensive direct link 0-2; adding a cheap link later
        // must lower the best cost (keyed update) and cascade.
        let mut topo = Topology::empty(3);
        use exspan_netsim::{LinkClass, LinkProps};
        let props = |cost| LinkProps {
            cost,
            ..LinkProps::from_class(LinkClass::Custom)
        };
        topo.add_link(0, 1, props(10));
        topo.add_link(1, 2, props(10));
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        assert!(engine.tuples(0, "bestPathCost").contains(&best(0, 2, 20)));
        // New cheap direct link 0-2.
        engine.topology_mut().add_link(0, 2, props(3));
        engine.insert_base(0, link(0, 2, 3));
        engine.insert_base(2, link(2, 0, 3));
        engine.run_to_fixpoint();
        let bests = engine.tuples(0, "bestPathCost");
        assert!(bests.contains(&best(0, 2, 3)));
        assert!(!bests.contains(&best(0, 2, 20)));
        // Node 1's cost to 2 must not regress.
        assert!(engine.tuples(1, "bestPathCost").contains(&best(1, 2, 10)));
    }

    #[test]
    fn path_vector_computes_loop_free_paths() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::path_vector(), topo, EngineConfig::default());
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        // Best path a->d must be a,b,c,d (cost 8) or a,c,d (cost 8): both cost
        // 8; accept either but require cost 8 and a loop-free path ending at d.
        let best_paths = engine.tuples(0, "bestPath");
        let to_d = best_paths
            .iter()
            .find(|t| t.values[0] == Value::Node(3))
            .expect("a must have a best path to d");
        assert_eq!(to_d.values[2], Value::Int(8));
        let path = to_d.values[1].as_list().unwrap();
        assert_eq!(path.first(), Some(&Value::Node(0)));
        assert_eq!(path.last(), Some(&Value::Node(3)));
        let unique: std::collections::BTreeSet<_> = path.iter().collect();
        assert_eq!(unique.len(), path.len(), "path must be loop-free");
    }

    #[test]
    fn packet_forward_delivers_along_best_path() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::packet_forward(), topo, EngineConfig::default());
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        // Send a packet from a (0) to d (3).
        let packet = Tuple::new(
            "ePacket",
            0,
            vec![Value::Node(0), Value::Node(3), Value::Payload(1024)],
        );
        engine.insert_base(0, packet);
        engine.run_to_fixpoint();
        let received = engine.tuples(3, "recvPacket");
        assert_eq!(received.len(), 1, "packet must be delivered exactly once");
        assert_eq!(received[0].values[0], Value::Node(0));
        assert_eq!(received[0].values[1], Value::Node(3));
        // No other node materialized a recvPacket.
        for n in [0, 1, 2] {
            assert!(engine.tuples(n, "recvPacket").is_empty());
        }
    }

    #[test]
    fn traffic_is_accounted_for_remote_derivations() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        let stats = engine.stats();
        assert!(stats.total_bytes() > 0, "protocol must exchange messages");
        assert!(stats.total_messages() > 0);
        // Every node participates.
        for n in 0..4 {
            assert!(stats.bytes_sent[n] > 0, "node {n} sent nothing");
        }
    }

    #[test]
    fn external_event_tuples_are_surfaced() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        let q = Tuple::new("eProvQuery", 2, vec![Value::Int(42)]);
        engine.send_tuple(0, 2, q.clone(), 0);
        loop {
            match engine.step() {
                Step::External { node, tuple, .. } => {
                    assert_eq!(node, 2);
                    assert_eq!(tuple, q);
                    break;
                }
                Step::Handled => continue,
                Step::Idle => panic!("external tuple was never surfaced"),
            }
        }
    }

    #[test]
    fn run_until_respects_time_limit() {
        let topo = Topology::transit_stub(1, 5);
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        seed_links(&mut engine);
        let stats = engine.run_until(0.01);
        assert!(engine.now() <= 0.011);
        assert!(stats.steps > 0);
    }

    #[test]
    fn aggregate_provenance_creates_prov_and_rule_exec() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(
            programs::mincost(),
            topo,
            EngineConfig {
                aggregate_provenance: true,
                ..Default::default()
            },
        );
        seed_links(&mut engine);
        engine.run_to_fixpoint();
        // bestPathCost(@a,c,5) must have a prov entry pointing at a ruleExec
        // for sp3 whose input is pathCost(@a,c,5).
        let target = best(0, 2, 5);
        let prov = engine.tuples(0, "prov");
        let entry = prov
            .iter()
            .find(|t| t.values[0] == Value::from_digest(target.vid()))
            .expect("prov entry for bestPathCost(@a,c,5)");
        let rid = entry.values[1].clone();
        let execs = engine.tuples(0, "ruleExec");
        let exec = execs
            .iter()
            .find(|t| t.values[0] == rid)
            .expect("ruleExec entry");
        assert_eq!(exec.values[1], Value::Str("sp3".into()));
        let pc_vid = Tuple::new("pathCost", 0, vec![Value::Node(2), Value::Int(5)]).vid();
        assert_eq!(
            exec.values[2],
            Value::List(vec![Value::Digest(pc_vid.0)]),
            "sp3's provenance child is the winning pathCost tuple"
        );
    }

    #[test]
    fn store_and_remove_silent_do_not_trigger_rules() {
        let topo = Topology::paper_example();
        let mut engine = Engine::new(programs::mincost(), topo, EngineConfig::default());
        let t = link(0, 1, 9);
        engine.store_silent(0, &t);
        assert_eq!(engine.tuples(0, "link"), vec![t.clone()]);
        // No derivation happened (no events processed at all).
        assert!(engine.tuples(0, "pathCost").is_empty());
        engine.remove_silent(0, &t);
        assert!(engine.tuples(0, "link").is_empty());
    }
}
