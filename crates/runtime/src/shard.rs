//! One shard of the distributed engine: the delta-processing core.
//!
//! The runtime partitions the topology's nodes over shards by rendezvous
//! hashing (see `Topology::partition_rendezvous`); each `Shard` owns the
//! materialized tables, event queue and traffic counters of its nodes and
//! executes rule firings for them.  NDlog rule bodies are *localized* — a
//! firing only ever reads the tables of the node it fires at — so a shard
//! never touches another shard's state.  Deltas whose head is located on a
//! foreign node leave through the simulator's outbox and are delivered to
//! the destination shard's inbox, carrying their execution-independent
//! ordering key (`(time, source, per-source seq)`), which the destination
//! queue sorts by.  Together these two properties make the sharded execution
//! bit-identical to the sequential one: every node processes exactly the same
//! deltas in exactly the same order, no matter how many shards (or threads)
//! the work is spread over.
//!
//! Tuples flow through the shard behind [`Arc`]s: the delta message, the
//! stored table row and every grounded join input share one allocation, and
//! relation lookups (trigger lists, tables) are keyed on interned
//! [`RelId`]s, so the per-delta path allocates no strings and deep-copies no
//! attribute vectors.

use crate::engine::{EngineConfig, Payload, Step};
use crate::plugin::{AnnotationPolicy, AnnotationToken};
use crate::table::{DeleteEffect, InsertEffect, TableStore};
use exspan_ndlog::ast::{AggFunc, Atom, BodyItem, Expr, HeadArg, Rule, Term};
use exspan_ndlog::eval::{eval_cmp, eval_expr, Bindings, EvalError, FuncRegistry};
use exspan_ndlog::is_event_predicate;
use exspan_ndlog::plan::{JoinLevel, JoinPlan, KeySource, ProgramPlans};
use exspan_netsim::{RoutedEvent, Simulator};
use exspan_types::{wire, NodeId, RelId, Symbol, Tuple, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// How many shards the engine spreads the topology's nodes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards (and worker threads during fixpoint runs).
    pub num_shards: usize,
}

impl ShardConfig {
    /// A single shard: the engine behaves exactly like the historical
    /// sequential engine (no worker threads, one queue, one table store).
    /// Used as the oracle in determinism tests.
    pub fn sequential() -> Self {
        ShardConfig { num_shards: 1 }
    }

    /// A fixed shard count.
    pub fn with_shards(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        ShardConfig { num_shards }
    }

    /// One shard per available CPU core (at least one).
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ShardConfig { num_shards: n }
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::sequential()
    }
}

/// An annotation policy shared between the coordinator and every shard.
pub type SharedPolicy = Arc<Mutex<dyn AnnotationPolicy>>;

/// Leaf callback of the plan executor: receives the shard, the completed
/// bindings and the grounded candidate tuples in body-atom slots.
type PlanSink<'a> = dyn FnMut(&Shard, Bindings, &[Option<Arc<Tuple>>]) + 'a;

/// Rule program data shared (read-only) by all shards.
pub(crate) struct RuleData {
    pub rules: Vec<Rule>,
    /// relation -> list of (rule index, trigger atom index)
    pub triggers: HashMap<RelId, Vec<(usize, usize)>>,
    /// Compiled join plans for every (rule, trigger) pair and aggregate rule,
    /// plus the secondary-index demands the table stores maintain.
    pub plans: ProgramPlans,
    /// Interned name of the internal aggregate-recompute event.
    pub agg_recompute: RelId,
    pub funcs: FuncRegistry,
    pub config: EngineConfig,
}

/// Identifies one aggregate group at one node: (node, relation, group key).
type AggGroupKey = (NodeId, RelId, Vec<Value>);

/// One shard: tables, event queue and rule execution for a subset of nodes.
pub(crate) struct Shard {
    data: Arc<RuleData>,
    pub(crate) store: TableStore,
    pub(crate) sim: Simulator<Payload>,
    pub(crate) policy: Option<SharedPolicy>,
    /// Bookkeeping for aggregate provenance: the (prov tuple, ruleExec
    /// tuple) pair currently installed for each group.  Not derivable from
    /// the tables, so it is journaled/snapshotted and restored on recovery
    /// (`pub(crate)` for the engine's recovery path).
    pub(crate) agg_prov: HashMap<AggGroupKey, (Arc<Tuple>, Arc<Tuple>)>,
    pub(crate) last_delta_time: f64,
    pub(crate) externals_seen: u64,
    pub(crate) processed: u64,
    /// Count of evaluation errors that are statically impossible for
    /// analyzer-accepted programs (unbound variables, unknown functions).
    /// Such errors silently drop the candidate derivation in release builds
    /// (preserving the historical byte-identical behavior) but are counted
    /// here and debug-asserted, so the differential tests can assert the
    /// analyzer's acceptance actually implies error-free evaluation.
    pub(crate) eval_errors: std::cell::Cell<u64>,
    /// Bytes this shard's transmitted messages would cost under the
    /// dictionary wire codec.  Only accumulated when
    /// `EngineConfig::track_compressed` is on; never feeds the flat
    /// `TrafficStats` the figures are built on.
    pub(crate) compressed_bytes: u64,
}

impl Shard {
    pub(crate) fn new(
        data: Arc<RuleData>,
        keys: HashMap<RelId, Vec<usize>>,
        index_demands: HashMap<RelId, Vec<Vec<usize>>>,
        sim: Simulator<Payload>,
    ) -> Self {
        Shard {
            data,
            store: TableStore::with_indexes(keys, index_demands),
            sim,
            policy: None,
            agg_prov: HashMap::new(),
            last_delta_time: 0.0,
            externals_seen: 0,
            processed: 0,
            eval_errors: std::cell::Cell::new(0),
            compressed_bytes: 0,
        }
    }

    /// Moves every event waiting in `inbox` into this shard's queue.
    pub(crate) fn drain_inbox(&mut self, inbox: &Mutex<Vec<RoutedEvent<Payload>>>) {
        let mut guard = inbox.lock().expect("inbox poisoned");
        for ev in guard.drain(..) {
            self.sim.push_routed(ev);
        }
    }

    /// Processes the next queued event.
    pub(crate) fn step(&mut self) -> Step {
        let Some(msg) = self.sim.pop() else {
            return Step::Idle;
        };
        self.processed += 1;
        let time = msg.time;
        match msg.payload {
            Payload::Delta {
                tuple,
                insert,
                token,
            } => {
                let node = msg.to;
                // Rule bodies are localized to `node`, so faulting in this
                // node's spilled tables (no-op without a spill budget) makes
                // every table evaluation can read resident before it runs.
                self.store.fault_in_node(node);
                if tuple.relation == self.data.agg_recompute {
                    self.last_delta_time = time;
                    self.handle_aggregate_recompute(node, &tuple);
                    return Step::Handled;
                }
                if self.is_external(tuple.relation) {
                    self.externals_seen += 1;
                    return Step::External {
                        node,
                        tuple,
                        time,
                        insert,
                    };
                }
                self.last_delta_time = time;
                self.process_delta(node, tuple, insert, token);
                Step::Handled
            }
        }
    }

    /// Processes every queued event strictly before `horizon` (and no later
    /// than `limit`).  Returns `(events processed, externals dropped)`.
    /// This is one barrier window of the parallel fixpoint loop; the horizon
    /// is chosen by the coordinator such that no in-flight cross-shard
    /// message can be due before it.
    pub(crate) fn run_window(&mut self, horizon: f64, limit: f64) -> (u64, u64) {
        let mut steps = 0u64;
        let mut external = 0u64;
        loop {
            match self.sim.peek_key() {
                None => break,
                Some(k) if k.time >= horizon || k.time > limit => break,
                Some(_) => {}
            }
            match self.step() {
                Step::Idle => break,
                Step::External { .. } => {
                    external += 1;
                    steps += 1;
                }
                Step::Handled => {
                    steps += 1;
                }
            }
        }
        (steps, external)
    }

    /// Whether tuples of `relation` have no handler inside the engine: event
    /// predicates that trigger no rule are surfaced to the caller.
    fn is_external(&self, relation: RelId) -> bool {
        is_event_predicate(relation.as_str()) && !self.data.triggers.contains_key(&relation)
    }

    // ------------------------------------------------------------------
    // Delta processing
    // ------------------------------------------------------------------

    fn process_delta(
        &mut self,
        node: NodeId,
        tuple: Arc<Tuple>,
        insert: bool,
        token: Option<AnnotationToken>,
    ) {
        let is_event = is_event_predicate(tuple.relation.as_str());
        let mut fire = true;
        let mut removed = false;
        let mut replaced: Option<Arc<Tuple>> = None;
        if !is_event {
            // Journal the mutation *intent* (not its effect): replaying the
            // same arguments through this identical code path reproduces
            // duplicate counts, keyed replacement and decrement-vs-remove
            // outcomes deterministically.
            self.store.journal_tuple(node, insert, &tuple);
            let table = self.store.table_mut(node, tuple.relation);
            if insert {
                match table.insert_shared(&tuple) {
                    InsertEffect::Added => {}
                    InsertEffect::Duplicate => fire = false,
                    InsertEffect::Replaced(old) => replaced = Some(old),
                }
            } else {
                match table.delete(&tuple) {
                    DeleteEffect::Removed => removed = true,
                    DeleteEffect::Decremented | DeleteEffect::Missing => fire = false,
                }
            }
        }
        // Insertions merge their shipped annotation *before* firing, so the
        // rules triggered by this delta see it; deletions drop the stored
        // annotation only *after* their cascade fired, because the cascade
        // ships the retracted derivation's history with its own deltas.
        let policy = self.policy.clone();
        if insert {
            if let Some(p) = &policy {
                p.lock()
                    .expect("annotation policy poisoned")
                    .on_arrival(node, &tuple, token, true, false);
            }
        }
        if fire {
            if let Some(old) = replaced {
                // Cascade the replaced row as a deletion before propagating
                // the new insertion; it left the visible state for good.
                self.fire_rules(node, &old, false);
                if let Some(p) = &policy {
                    p.lock()
                        .expect("annotation policy poisoned")
                        .on_arrival(node, &old, None, false, true);
                }
            }
            self.fire_rules(node, &tuple, insert);
        }
        if !insert {
            if let Some(p) = &policy {
                p.lock()
                    .expect("annotation policy poisoned")
                    .on_arrival(node, &tuple, token, false, removed);
            }
        }
    }

    fn fire_rules(&mut self, node: NodeId, tuple: &Arc<Tuple>, insert: bool) {
        // Borrow the trigger list out of a cloned `Arc` handle rather than
        // cloning the Vec itself: this runs once per delta.
        let data = Arc::clone(&self.data);
        let Some(trigger_list) = data.triggers.get(&tuple.relation) else {
            return;
        };
        for &(rule_idx, atom_idx) in trigger_list {
            let rule = &data.rules[rule_idx];
            if rule.is_aggregate() {
                self.schedule_aggregate_recompute(rule, node, tuple, atom_idx);
            } else {
                self.fire_rule(rule, rule_idx, node, tuple, atom_idx, insert);
            }
        }
    }

    /// Fires a non-aggregate rule triggered by `tuple` bound at body atom
    /// `atom_idx`, emitting one head delta per satisfying assignment.
    fn fire_rule(
        &mut self,
        rule: &Rule,
        rule_idx: usize,
        node: NodeId,
        tuple: &Arc<Tuple>,
        atom_idx: usize,
        insert: bool,
    ) {
        let derivations = self.evaluate_rule_with_trigger(rule, rule_idx, node, tuple, atom_idx);
        for (inputs, head) in derivations {
            self.emit_derivation(rule, node, &inputs, head, insert);
        }
    }

    /// Evaluates a rule body with `tuple` bound at `atom_idx` by executing
    /// the compiled join plan, returning the grounded input tuples (in
    /// body-atom order) and the head tuple for each satisfying assignment —
    /// in the exact sequence the historical nested-loop scan produced.
    fn evaluate_rule_with_trigger(
        &self,
        rule: &Rule,
        rule_idx: usize,
        node: NodeId,
        tuple: &Arc<Tuple>,
        atom_idx: usize,
    ) -> Vec<(Vec<Arc<Tuple>>, Tuple)> {
        let BodyItem::Atom(trigger_atom) = &rule.body[atom_idx] else {
            return Vec::new();
        };
        let Some(mut bindings) = unify_atom(trigger_atom, tuple, &Bindings::new()) else {
            return Vec::new();
        };
        // The body is localized: the trigger's location must be this node.
        if tuple.location != node {
            return Vec::new();
        }
        // Ensure the location variable is bound to this node.
        if let Term::Var(v) = &trigger_atom.location {
            bindings.insert(*v, Value::Node(node));
        }

        let Some(plan) = self.data.plans.triggers.get(&(rule_idx, atom_idx)) else {
            return Vec::new();
        };
        // Transient event atoms are never materialized: nothing to join.
        if plan.dead {
            return Vec::new();
        }

        let mut results: Vec<(Vec<Arc<Tuple>>, Tuple)> = Vec::new();
        let mut slots: Vec<Option<Arc<Tuple>>> = vec![None; rule.body.len()];
        slots[atom_idx] = Some(Arc::clone(tuple));
        self.run_plan(
            rule,
            plan,
            node,
            0,
            bindings,
            &mut slots,
            false,
            &mut |shard, bindings, slots| {
                if let Some((inputs, head)) = shard.finish_rule(rule, bindings, slots) {
                    results.push((inputs, head));
                }
            },
        );
        if !plan.in_body_order {
            self.restore_canonical_order(&mut results, |r| &r.0);
        }
        results
    }

    /// Executes one level of a compiled join plan: probes the demanded index
    /// when every key column is bound (falling back to a canonical scan
    /// otherwise) and unifies each candidate, recursing per match.
    ///
    /// `local_only` marks the aggregate evaluation contexts, which restrict
    /// every candidate to the evaluating node.  The sink receives the
    /// completed bindings and the grounded tuples in body-atom slots.
    #[allow(clippy::too_many_arguments)]
    fn run_plan(
        &self,
        rule: &Rule,
        plan: &JoinPlan,
        node: NodeId,
        depth: usize,
        bindings: Bindings,
        slots: &mut Vec<Option<Arc<Tuple>>>,
        local_only: bool,
        sink: &mut PlanSink<'_>,
    ) {
        if depth == plan.levels.len() {
            sink(self, bindings, slots);
            return;
        }
        let level = &plan.levels[depth];
        let BodyItem::Atom(atom) = &rule.body[level.body_idx] else {
            return;
        };
        let Some(table) = self.store.table(node, level.relation) else {
            return;
        };
        let mut visit = |candidate: &Arc<Tuple>| {
            if local_only && candidate.location != node {
                return;
            }
            if let Some(new_bindings) = unify_atom(atom, candidate, &bindings) {
                slots[level.body_idx] = Some(Arc::clone(candidate));
                self.run_plan(
                    rule,
                    plan,
                    node,
                    depth + 1,
                    new_bindings,
                    slots,
                    local_only,
                    sink,
                );
                slots[level.body_idx] = None;
            }
        };
        match probe_key(level, node, &bindings) {
            Some(key) => match table.probe(&level.cols, &key) {
                Some(iter) => iter.for_each(&mut visit),
                None => table.scan().for_each(&mut visit),
            },
            None => table.scan().for_each(&mut visit),
        }
    }

    /// Applies assignments and constraints over completed bindings,
    /// returning the fully-bound set (the shared leaf step of both the
    /// trigger-join and aggregate evaluation paths).
    /// Records an evaluation error observed while pruning a candidate
    /// binding.  `TypeError`/`ArityError` are data-dependent and legitimately
    /// reject candidates; `UnboundVariable`/`UnknownFunction` are statically
    /// impossible for analyzer-accepted programs, so those are counted (and
    /// flagged in debug builds).  Release behavior is unchanged either way:
    /// the candidate is dropped.
    fn note_eval_error(&self, rule: &Rule, err: &EvalError) {
        if matches!(
            err,
            EvalError::UnboundVariable(_) | EvalError::UnknownFunction(_)
        ) {
            self.eval_errors.set(self.eval_errors.get() + 1);
            debug_assert!(
                false,
                "rule {}: statically-impossible eval error: {err}",
                rule.label
            );
        }
    }

    fn eval_or_note(&self, rule: &Rule, expr: &Expr, bindings: &Bindings) -> Option<Value> {
        match eval_expr(expr, bindings, &self.data.funcs) {
            Ok(v) => Some(v),
            Err(e) => {
                self.note_eval_error(rule, &e);
                None
            }
        }
    }

    fn apply_guards(&self, rule: &Rule, mut bindings: Bindings) -> Option<Bindings> {
        for item in &rule.body {
            match item {
                BodyItem::Assign(var, expr) => {
                    let value = self.eval_or_note(rule, expr, &bindings)?;
                    // An assignment to an already-bound variable acts as an
                    // equality constraint (standard Datalog convention).
                    if let Some(existing) = bindings.get(*var) {
                        if *existing != value {
                            return None;
                        }
                    } else {
                        bindings.insert(*var, value);
                    }
                }
                BodyItem::Constraint(op, lhs, rhs) => {
                    let l = self.eval_or_note(rule, lhs, &bindings)?;
                    let r = self.eval_or_note(rule, rhs, &bindings)?;
                    // A comparison failure here is always type-driven
                    // (`eval_cmp` cannot see unbound variables), so it is a
                    // legitimate data-dependent rejection, not counted.
                    if !eval_cmp(*op, &l, &r).ok()? {
                        return None;
                    }
                }
                BodyItem::Atom(_) => {}
            }
        }
        Some(bindings)
    }

    /// Applies assignments and constraints, then constructs the head tuple.
    /// The grounded inputs are read out of the body-ordered slots directly —
    /// no per-derivation copy-and-sort.
    fn finish_rule(
        &self,
        rule: &Rule,
        bindings: Bindings,
        slots: &[Option<Arc<Tuple>>],
    ) -> Option<(Vec<Arc<Tuple>>, Tuple)> {
        let bindings = self.apply_guards(rule, bindings)?;
        let head = self.build_head(rule, &bindings)?;
        Some((slots.iter().flatten().cloned().collect(), head))
    }

    /// Restores the canonical (body-atom-ordered nested-loop) result
    /// sequence after a reordered plan enumerated the same satisfying
    /// assignments in greedy order.  The historical order is lexicographic
    /// by the candidates' primary row keys per body atom — exactly what
    /// comparing grounded inputs row-key-wise reconstructs — so emitted
    /// deltas keep their execution-independent sequence numbers and every
    /// figure stays byte-identical.
    fn restore_canonical_order<T>(
        &self,
        results: &mut [T],
        inputs_of: impl Fn(&T) -> &Vec<Arc<Tuple>>,
    ) {
        if results.len() < 2 {
            return;
        }
        // Every result grounds the same relation at each body slot, so the
        // per-slot key specs can be resolved once, not per comparison.
        let specs: Vec<&[usize]> = inputs_of(&results[0])
            .iter()
            .map(|t| self.store.key_spec(t.relation))
            .collect();
        results.sort_by(|a, b| {
            let (a, b) = (inputs_of(a), inputs_of(b));
            for ((x, y), spec) in a.iter().zip(b.iter()).zip(&specs) {
                match row_key_cmp(spec, x, y) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            a.len().cmp(&b.len())
        });
    }

    /// Looks up a head variable, counting the (statically impossible)
    /// unbound case via [`Shard::note_eval_error`].
    fn head_binding<'b>(
        &self,
        rule: &Rule,
        bindings: &'b Bindings,
        v: Symbol,
    ) -> Option<&'b Value> {
        let value = bindings.get(v);
        if value.is_none() {
            self.note_eval_error(rule, &EvalError::UnboundVariable(v.as_str().to_string()));
        }
        value
    }

    fn build_head(&self, rule: &Rule, bindings: &Bindings) -> Option<Tuple> {
        let loc = match &rule.head.location {
            Term::Var(v) => self.head_binding(rule, bindings, *v)?.as_node().ok()?,
            Term::Const(Value::Node(n)) => *n,
            Term::Const(Value::Int(n)) => *n as NodeId,
            Term::Const(_) => return None,
        };
        let mut values = Vec::with_capacity(rule.head.args.len());
        for arg in &rule.head.args {
            match arg {
                HeadArg::Term(Term::Var(v)) => {
                    values.push(self.head_binding(rule, bindings, *v)?.clone());
                }
                HeadArg::Term(Term::Const(c)) => values.push(c.clone()),
                HeadArg::Expr(e) => values.push(self.eval_or_note(rule, e, bindings)?),
                HeadArg::Aggregate(_, _) => return None,
            }
        }
        Some(Tuple::new(rule.head.relation, loc, values))
    }

    /// Emits the head delta of a (non-aggregate) rule firing: notifies the
    /// annotation policy, then enqueues locally or ships to the head node.
    fn emit_derivation(
        &mut self,
        rule: &Rule,
        node: NodeId,
        inputs: &[Arc<Tuple>],
        head: Tuple,
        insert: bool,
    ) {
        let head = Arc::new(head);
        let token = match self.policy.clone() {
            Some(policy) => policy
                .lock()
                .expect("annotation policy poisoned")
                .on_derivation(node, rule.label.as_str(), inputs, &head, insert),
            None => None,
        };
        self.dispatch_delta(node, head, insert, token);
    }

    /// Sends or locally enqueues a delta for `head` produced at `node`.
    fn dispatch_delta(
        &mut self,
        node: NodeId,
        head: Arc<Tuple>,
        insert: bool,
        token: Option<AnnotationToken>,
    ) {
        let dest = head.location;
        if dest == node {
            self.sim.schedule_local(
                node,
                Payload::Delta {
                    tuple: head,
                    insert,
                    token,
                },
            );
        } else {
            let annotation_bytes = match self.policy.clone() {
                Some(policy) => policy
                    .lock()
                    .expect("annotation policy poisoned")
                    .annotation_bytes(node, dest, &head, token),
                None => 0,
            };
            let bytes = wire::message_size(std::slice::from_ref(&*head), annotation_bytes);
            if self.data.config.track_compressed {
                let compressed_annotation = match self.policy.clone() {
                    Some(policy) => policy
                        .lock()
                        .expect("annotation policy poisoned")
                        .annotation_bytes_compressed(node, dest, &head, token, annotation_bytes),
                    None => 0,
                };
                self.compressed_bytes += exspan_types::compress::compressed_message_size(
                    std::slice::from_ref(&*head),
                    compressed_annotation,
                ) as u64;
            }
            self.sim.send(
                node,
                dest,
                bytes,
                Payload::Delta {
                    tuple: head,
                    insert,
                    token,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Aggregates
    // ------------------------------------------------------------------

    /// Schedules a (local) recomputation of the aggregate group(s) affected
    /// by a delta.
    ///
    /// The recomputation itself runs as a separate queued event
    /// ([`crate::engine::AGG_RECOMPUTE_EVENT`]) rather than synchronously:
    /// this guarantees that any output deltas dispatched by *earlier*
    /// recomputations of the same group have already been applied to the head
    /// table when the comparison against the currently stored output is made.
    /// A synchronous recomputation could read a stale output value and emit
    /// contradictory retractions, which prevents convergence.
    fn schedule_aggregate_recompute(
        &mut self,
        rule: &Rule,
        node: NodeId,
        tuple: &Tuple,
        atom_idx: usize,
    ) {
        let Some((_, _, agg_pos)) = rule.head.aggregate() else {
            return;
        };
        let BodyItem::Atom(trigger_atom) = &rule.body[atom_idx] else {
            return;
        };
        let Some(bindings) = unify_atom(trigger_atom, tuple, &Bindings::new()) else {
            return;
        };
        if tuple.location != node {
            return;
        }
        // An empty group key means "recompute every group of this rule".
        let group_key = self.group_key(rule, &bindings, agg_pos).unwrap_or_default();
        let event = Tuple::new(
            self.data.agg_recompute,
            node,
            vec![Value::Str(rule.label), Value::list(group_key)],
        );
        self.sim.schedule_local(
            node,
            Payload::Delta {
                tuple: Arc::new(event),
                insert: true,
                token: None,
            },
        );
    }

    /// Handles a queued aggregate-recomputation event.
    fn handle_aggregate_recompute(&mut self, node: NodeId, event: &Tuple) {
        let Ok(label) = event.values[0].as_symbol() else {
            return;
        };
        let Ok(group_key) = event.values[1].as_list().map(<[Value]>::to_vec) else {
            return;
        };
        let data = Arc::clone(&self.data);
        let Some((rule_idx, rule)) = data
            .rules
            .iter()
            .enumerate()
            .find(|(_, r)| r.label == label)
        else {
            return;
        };
        let Some((func, agg_var, agg_pos)) = rule.head.aggregate() else {
            return;
        };
        if group_key.is_empty() {
            let groups = self.all_groups(rule, rule_idx, node, agg_pos);
            for g in groups {
                self.recompute_group(rule, rule_idx, node, func, agg_var, agg_pos, &g);
            }
        } else {
            self.recompute_group(rule, rule_idx, node, func, agg_var, agg_pos, &group_key);
        }
    }

    /// The group key is the head location plus every non-aggregate head
    /// argument, evaluated under `bindings`.
    fn group_key(&self, rule: &Rule, bindings: &Bindings, agg_pos: usize) -> Option<Vec<Value>> {
        let mut key = Vec::new();
        match &rule.head.location {
            Term::Var(v) => key.push(bindings.get(*v)?.clone()),
            Term::Const(c) => key.push(c.clone()),
        }
        for (i, arg) in rule.head.args.iter().enumerate() {
            if i == agg_pos {
                continue;
            }
            match arg {
                HeadArg::Term(Term::Var(v)) => key.push(bindings.get(*v)?.clone()),
                HeadArg::Term(Term::Const(c)) => key.push(c.clone()),
                _ => return None,
            }
        }
        Some(key)
    }

    /// Enumerates all group keys derivable at `node` for an aggregate rule.
    fn all_groups(
        &self,
        rule: &Rule,
        rule_idx: usize,
        node: NodeId,
        agg_pos: usize,
    ) -> Vec<Vec<Value>> {
        let plan = self
            .data
            .plans
            .aggregates
            .get(&rule_idx)
            .map(|p| &p.all_groups);
        let mut groups: Vec<Vec<Value>> = Vec::new();
        for (bindings, _inputs) in self.evaluate_rule_body(rule, plan, node, &Bindings::new()) {
            if let Some(k) = self.group_key(rule, &bindings, agg_pos) {
                if !groups.contains(&k) {
                    groups.push(k);
                }
            }
        }
        groups
    }

    /// Pre-binds the head variables that form a group key, so aggregate
    /// recomputation only enumerates the affected group rather than the whole
    /// table (essential for performance: one delta must not trigger a scan of
    /// every group at the node).
    fn group_bindings(&self, rule: &Rule, group_key: &[Value], agg_pos: usize) -> Bindings {
        let mut bindings = Bindings::new();
        if let Term::Var(v) = &rule.head.location {
            bindings.insert(*v, group_key[0].clone());
        }
        let mut key_iter = group_key.iter().skip(1);
        for (i, arg) in rule.head.args.iter().enumerate() {
            if i == agg_pos {
                continue;
            }
            let key_val = key_iter.next();
            if let (HeadArg::Term(Term::Var(v)), Some(value)) = (arg, key_val) {
                bindings.insert(*v, value.clone());
            }
        }
        bindings
    }

    /// Evaluates the whole rule body at `node` under `initial` bindings by
    /// executing `plan`, returning every satisfying assignment with its
    /// grounded input tuples (in body-atom order, in the canonical scan
    /// enumeration sequence).
    fn evaluate_rule_body(
        &self,
        rule: &Rule,
        plan: Option<&JoinPlan>,
        node: NodeId,
        initial: &Bindings,
    ) -> Vec<(Bindings, Vec<Arc<Tuple>>)> {
        let Some(plan) = plan else {
            return Vec::new();
        };
        if plan.dead {
            return Vec::new();
        }
        let mut results: Vec<(Bindings, Vec<Arc<Tuple>>)> = Vec::new();
        let mut slots: Vec<Option<Arc<Tuple>>> = vec![None; rule.body.len()];
        self.run_plan(
            rule,
            plan,
            node,
            0,
            initial.clone(),
            &mut slots,
            true,
            &mut |shard, bindings, slots| {
                if let Some(complete) = shard.apply_guards(rule, bindings) {
                    results.push((complete, slots.iter().flatten().cloned().collect()));
                }
            },
        );
        if !plan.in_body_order {
            self.restore_canonical_order(&mut results, |r| &r.1);
        }
        results
    }

    /// Recomputes one aggregate group and reconciles its output tuple.
    #[allow(clippy::too_many_arguments)]
    fn recompute_group(
        &mut self,
        rule: &Rule,
        rule_idx: usize,
        node: NodeId,
        func: AggFunc,
        agg_var: Option<Symbol>,
        agg_pos: usize,
        group_key: &[Value],
    ) {
        // Gather all bindings for this group.  Pre-binding the group-key
        // variables restricts the enumeration to the affected group, and the
        // compiled group plan turns the restriction into index probes.
        let initial = self.group_bindings(rule, group_key, agg_pos);
        let plan = self.data.plans.aggregates.get(&rule_idx).map(|p| &p.group);
        let all = self.evaluate_rule_body(rule, plan, node, &initial);
        let mut in_group: Vec<(Bindings, Vec<Arc<Tuple>>)> = Vec::new();
        for (b, inputs) in all {
            if let Some(k) = self.group_key(rule, &b, agg_pos) {
                if k == group_key {
                    in_group.push((b, inputs));
                }
            }
        }

        // Compute the aggregate value and the winning binding (for MIN/MAX
        // provenance, the winning tuple is the provenance child; for COUNT the
        // first binding is used as a representative).
        let new_output: Option<(Value, usize)> = match func {
            AggFunc::Count => {
                if in_group.is_empty() {
                    None
                } else {
                    Some((Value::Int(in_group.len() as i64), 0))
                }
            }
            AggFunc::Min | AggFunc::Max => {
                let Some(var) = agg_var else {
                    return;
                };
                let mut best: Option<(i64, usize)> = None;
                for (i, (b, _)) in in_group.iter().enumerate() {
                    let Some(Value::Int(v)) = b.get(var).cloned() else {
                        continue;
                    };
                    best = match best {
                        None => Some((v, i)),
                        Some((cur, ci)) => {
                            let better = match func {
                                AggFunc::Min => v < cur,
                                AggFunc::Max => v > cur,
                                AggFunc::Count => false,
                            };
                            if better {
                                Some((v, i))
                            } else {
                                Some((cur, ci))
                            }
                        }
                    };
                }
                best.map(|(v, i)| (Value::Int(v), i))
            }
        };

        // Current output for this group, if any.
        let loc = match &group_key[0] {
            Value::Node(n) => *n,
            Value::Int(n) => *n as NodeId,
            _ => return,
        };
        let current = self.find_group_output(rule, rule_idx, node, group_key, agg_pos);

        let new_tuple = new_output.as_ref().map(|(value, _)| {
            let mut values = Vec::with_capacity(rule.head.args.len());
            let mut key_iter = group_key.iter().skip(1);
            for (i, _) in rule.head.args.iter().enumerate() {
                if i == agg_pos {
                    values.push(value.clone());
                } else {
                    values.push(
                        key_iter
                            .next()
                            .expect("group key covers non-agg args")
                            .clone(),
                    );
                }
            }
            Arc::new(Tuple::new(rule.head.relation, loc, values))
        });

        if current == new_tuple {
            return;
        }

        // Retract the old output (and its aggregate-provenance entries).
        if let Some(old) = current {
            if self.data.config.aggregate_provenance {
                if let Some((prov_t, exec_t)) =
                    self.agg_prov
                        .remove(&(node, rule.head.relation, group_key.to_vec()))
                {
                    self.store
                        .journal_agg(false, node, rule.head.relation, group_key, None);
                    self.dispatch_delta(node, prov_t, false, None);
                    self.dispatch_delta(node, exec_t, false, None);
                }
            }
            let token = match self.policy.clone() {
                Some(policy) => policy
                    .lock()
                    .expect("annotation policy poisoned")
                    .on_derivation(node, rule.label.as_str(), &[], &old, false),
                None => None,
            };
            self.dispatch_delta(node, old, false, token);
        }

        // Assert the new output.
        if let (Some(new_t), Some((_, winner_idx))) = (new_tuple, new_output) {
            let winning_inputs = in_group
                .get(winner_idx)
                .map(|(_, inputs)| inputs.clone())
                .unwrap_or_default();
            let token = match self.policy.clone() {
                Some(policy) => policy
                    .lock()
                    .expect("annotation policy poisoned")
                    .on_derivation(node, rule.label.as_str(), &winning_inputs, &new_t, true),
                None => None,
            };
            if self.data.config.aggregate_provenance {
                let vids: Vec<_> = winning_inputs.iter().map(|t| t.vid()).collect();
                let rid = exspan_types::tuple::rule_exec_id(rule.label.as_str(), node, &vids);
                let exec_t = Arc::new(Tuple::new(
                    "ruleExec",
                    node,
                    vec![
                        Value::from_digest(rid),
                        Value::Str(rule.label),
                        Value::list(vids.iter().map(|v| Value::Digest(v.0)).collect()),
                    ],
                ));
                let prov_t = Arc::new(Tuple::new(
                    "prov",
                    new_t.location,
                    vec![
                        Value::from_digest(new_t.vid()),
                        Value::from_digest(rid),
                        Value::Node(node),
                    ],
                ));
                self.agg_prov.insert(
                    (node, rule.head.relation, group_key.to_vec()),
                    (Arc::clone(&prov_t), Arc::clone(&exec_t)),
                );
                self.store.journal_agg(
                    true,
                    node,
                    rule.head.relation,
                    group_key,
                    Some((&prov_t, &exec_t)),
                );
                self.dispatch_delta(node, exec_t, true, None);
                self.dispatch_delta(node, prov_t, true, None);
            }
            self.dispatch_delta(node, new_t, true, token);
        }
    }

    /// Finds the currently stored output tuple of an aggregate group, by
    /// keyed probe of the head table when the group columns are indexed
    /// (falling back to the canonical scan otherwise).
    fn find_group_output(
        &self,
        rule: &Rule,
        rule_idx: usize,
        node: NodeId,
        group_key: &[Value],
        agg_pos: usize,
    ) -> Option<Arc<Tuple>> {
        let table = self.store.table(node, rule.head.relation)?;
        let loc = match &group_key[0] {
            Value::Node(n) => *n,
            Value::Int(n) => *n as NodeId,
            _ => return None,
        };
        let matches = |t: &&Arc<Tuple>| {
            if t.location != loc {
                return false;
            }
            let mut key_iter = group_key.iter().skip(1);
            for (i, v) in t.values.iter().enumerate() {
                if i == agg_pos {
                    continue;
                }
                match key_iter.next() {
                    Some(k) if k == v => {}
                    _ => return false,
                }
            }
            true
        };
        let output_cols = self
            .data
            .plans
            .aggregates
            .get(&rule_idx)
            .map_or(&[][..], |p| p.output_cols.as_slice());
        if !output_cols.is_empty() {
            let mut key = Vec::with_capacity(output_cols.len());
            key.push(Value::Node(loc));
            key.extend(group_key.iter().skip(1).cloned());
            if key.len() == output_cols.len() {
                if let Some(mut iter) = table.probe(output_cols, &key) {
                    return iter.find(matches).cloned();
                }
            }
        }
        table.scan().find(matches).cloned()
    }
}

/// Compares two tuples of the same relation by their primary row key under
/// `spec` — the order `scan()` enumerates them in.
fn row_key_cmp(spec: &[usize], a: &Tuple, b: &Tuple) -> Ordering {
    debug_assert_eq!(a.relation, b.relation);
    if spec.is_empty() {
        return (a.location, &a.values).cmp(&(b.location, &b.values));
    }
    for &i in spec {
        let ord = if i == 0 {
            a.location.cmp(&b.location)
        } else {
            a.values[i - 1].cmp(&b.values[i - 1])
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Builds the probe-key values of one join level under the current bindings.
///
/// Returns `None` when the level has no probe columns or a key value cannot
/// be produced (an unbound variable, or a location constant that is not
/// node-valued) — the executor then falls back to a scan, where unification
/// filters exactly as it always did.  A probe key is only ever a *narrowing*:
/// every candidate it yields is still unified against the atom.
fn probe_key(level: &JoinLevel, node: NodeId, bindings: &Bindings) -> Option<Vec<Value>> {
    if level.cols.is_empty() {
        return None;
    }
    let mut key = Vec::with_capacity(level.cols.len());
    for (&col, source) in level.cols.iter().zip(&level.sources) {
        let value = match source {
            KeySource::CurrentNode => Value::Node(node),
            KeySource::Term(Term::Const(c)) => {
                if col == 0 {
                    // The location column stores `Value::Node`; unification
                    // accepts an integer constant naming the same node.
                    match c {
                        Value::Node(n) => Value::Node(*n),
                        Value::Int(n) => Value::Node(*n as NodeId),
                        _ => return None,
                    }
                } else {
                    c.clone()
                }
            }
            KeySource::Term(Term::Var(v)) => {
                let bound = bindings.get(*v)?.clone();
                if col == 0 && !matches!(bound, Value::Node(_)) {
                    // A non-node binding can never match a location; let the
                    // scan + unification path reject every candidate.
                    return None;
                }
                bound
            }
        };
        key.push(value);
    }
    Some(key)
}

/// Unifies an atom against a tuple under existing bindings, returning the
/// extended bindings on success.
pub(crate) fn unify_atom(atom: &Atom, tuple: &Tuple, bindings: &Bindings) -> Option<Bindings> {
    if atom.relation != tuple.relation || atom.args.len() != tuple.values.len() {
        return None;
    }
    let mut out = bindings.clone();
    // Location.
    match &atom.location {
        Term::Var(v) => match out.get(*v) {
            Some(existing) => {
                if *existing != Value::Node(tuple.location) {
                    return None;
                }
            }
            None => {
                out.insert(*v, Value::Node(tuple.location));
            }
        },
        Term::Const(c) => {
            if *c != Value::Node(tuple.location) && *c != Value::Int(tuple.location as i64) {
                return None;
            }
        }
    }
    // Arguments.
    for (term, value) in atom.args.iter().zip(tuple.values.iter()) {
        match term {
            Term::Var(v) => match out.get(*v) {
                Some(existing) => {
                    if existing != value {
                        return None;
                    }
                }
                None => {
                    out.insert(*v, value.clone());
                }
            },
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_binds_and_checks_consistency() {
        let atom = Atom::new("link", Term::var("Z"), vec![Term::var("S"), Term::var("C")]);
        let t = Tuple::new("link", 1, vec![Value::Node(2), Value::Int(3)]);
        let b = unify_atom(&atom, &t, &Bindings::new()).unwrap();
        assert_eq!(b.get(Symbol::intern("Z")), Some(&Value::Node(1)));
        assert_eq!(b.get(Symbol::intern("S")), Some(&Value::Node(2)));
        assert_eq!(b.get(Symbol::intern("C")), Some(&Value::Int(3)));
        // Conflicting pre-binding fails.
        let mut pre = Bindings::new();
        pre.insert(Symbol::intern("S"), Value::Node(9));
        assert!(unify_atom(&atom, &t, &pre).is_none());
        // Constant mismatch fails.
        let atom2 = Atom::new(
            "link",
            Term::var("Z"),
            vec![Term::var("S"), Term::constant(4i64)],
        );
        assert!(unify_atom(&atom2, &t, &Bindings::new()).is_none());
        // Relation mismatch fails.
        let atom3 = Atom::new("path", Term::var("Z"), vec![Term::var("S"), Term::var("C")]);
        assert!(unify_atom(&atom3, &t, &Bindings::new()).is_none());
    }

    #[test]
    fn shard_config_constructors() {
        assert_eq!(ShardConfig::sequential().num_shards, 1);
        assert_eq!(ShardConfig::with_shards(4).num_shards, 4);
        assert!(ShardConfig::auto().num_shards >= 1);
        assert_eq!(ShardConfig::default(), ShardConfig::sequential());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardConfig::with_shards(0);
    }
}
