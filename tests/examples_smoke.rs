//! Smoke tests mirroring the core path of each `examples/` binary, so the
//! examples' API surface cannot silently rot between releases.
//!
//! Every scenario runs through the shared `exspan::setup` helper (the same
//! builder-based prologue the examples use) and is executed twice: on the
//! sequential engine (one shard — the historical behavior) and on the
//! sharded engine (three shards).  Each scenario returns a comparable
//! outcome, and the two executions must agree exactly — any determinism
//! drift between the sharded and sequential runtimes fails the suite.
//!
//! The two examples that build 100-node transit-stub networks are exercised
//! here on smaller topologies to keep debug-mode test time reasonable; CI
//! additionally runs the real binaries at full scale in release mode.

use exspan::core::storage::{all_prov_entries, all_rule_exec_entries};
use exspan::core::{Repr, Traversal};
use exspan::netsim::{ChurnModel, LinkClass, LinkProps, Topology};
use exspan::setup;
use exspan::types::{Tuple, Value};
use std::sync::Arc;

/// Runs `scenario` on the sequential oracle and on three shards and asserts
/// both executions produce the same outcome.
fn assert_sharding_invariant<T: PartialEq + std::fmt::Debug>(
    name: &str,
    scenario: impl Fn(usize) -> T,
) {
    let sequential = scenario(1);
    let sharded = scenario(3);
    assert_eq!(
        sequential, sharded,
        "{name}: sharded run diverged from the sequential engine"
    );
}

/// `examples/quickstart.rs`: Figure 3, provenance of `bestPathCost(@a,c,5)`
/// in three representations.
fn quickstart_core_path(shards: usize) -> (u64, Option<u64>, Vec<u32>) {
    let mut deployment = setup::mincost_reference(Topology::paper_example(), shards);
    assert!(!deployment.tuples_shared(0, "bestPathCost").is_empty());

    let target = Tuple::new("bestPathCost", 0, vec![Value::Node(2), Value::Int(5)]);

    let outcome = deployment
        .query(&target)
        .issuer(3)
        .repr(Repr::Polynomial)
        .execute();
    let polynomial = outcome.annotation.expect("polynomial query completes");
    let derivations = polynomial.as_expr().unwrap().num_derivations();
    assert_eq!(derivations, 2);

    let outcome = deployment
        .query(&target)
        .issuer(3)
        .repr(Repr::DerivationCount)
        .execute();
    let count = outcome.annotation.unwrap().as_count();
    assert_eq!(count, Some(2));

    let outcome = deployment
        .query(&target)
        .issuer(3)
        .repr(Repr::NodeSet)
        .execute();
    let nodes: Vec<u32> = outcome
        .annotation
        .unwrap()
        .as_nodes()
        .unwrap()
        .iter()
        .copied()
        .collect();
    assert_eq!(nodes, vec![0, 1]);
    (derivations, count, nodes)
}

#[test]
fn quickstart_smoke() {
    assert_sharding_invariant("quickstart", quickstart_core_path);
}

/// `examples/network_debugging.rs`: inspect the provenance graph, explain a
/// route, then fail a link and watch the state update incrementally.
fn network_debugging_core_path(shards: usize) -> (Vec<Arc<Tuple>>, String, Vec<Arc<Tuple>>) {
    let mut deployment = setup::mincost_reference(Topology::testbed_ring(12, 7), shards);
    assert!(!all_prov_entries(deployment.engine()).is_empty());
    assert!(!all_rule_exec_entries(deployment.engine()).is_empty());

    let routes = deployment.tuples_shared(0, "bestPathCost");
    let suspicious = routes
        .iter()
        .max_by_key(|t| t.values[1].as_int().unwrap_or(0))
        .expect("node 0 has routes")
        .clone();

    let outcome = deployment.query(&suspicious).repr(Repr::NodeSet).execute();
    assert!(!outcome.annotation.unwrap().as_nodes().unwrap().is_empty());

    let outcome = deployment
        .query(&suspicious)
        .repr(Repr::Polynomial)
        .execute();
    let expr_text = outcome.annotation.unwrap().as_expr().unwrap().to_string();
    assert!(!expr_text.is_empty());

    let neighbor = deployment.topology().neighbors(0)[0];
    deployment.remove_link(0, neighbor);
    deployment.run_to_fixpoint();
    // The network is still connected through the rest of the ring, so node 0
    // keeps a route to every other node.
    let remaining = deployment.tuples_shared(0, "bestPathCost");
    assert!(!remaining.is_empty());
    (routes, expr_text, remaining)
}

#[test]
fn network_debugging_smoke() {
    assert_sharding_invariant("network_debugging", network_debugging_core_path);
}

/// `examples/churn_diagnostics.rs`: cached derivation-count queries with
/// automatic transitive invalidation while churn events are applied, all on
/// the deployment's one clock.
fn churn_diagnostics_core_path(shards: usize) -> (Option<u64>, Vec<Arc<Tuple>>, u64, u64) {
    // The churn model only churns stub-stub links, so build a small ring of
    // them (the example's 100-node transit-stub network is too slow for a
    // debug-mode smoke test).
    let mut topology = Topology::empty(12);
    for i in 0..12u32 {
        topology.add_link(i, (i + 1) % 12, LinkProps::from_class(LinkClass::StubStub));
    }
    let churn = ChurnModel {
        interval: 0.5,
        changes_per_batch: 2,
        seed: 99,
    };
    let schedule = churn.schedule(&topology, 1.0);
    assert!(!schedule.is_empty(), "churn model produced no events");
    let mut deployment = setup::mincost_reference(topology, shards);

    let monitored = deployment
        .tuples_shared(0, "bestPathCost")
        .first()
        .expect("node 0 has routes")
        .clone();
    let handle = deployment
        .query(&monitored)
        .issuer(0)
        .repr(Repr::DerivationCount)
        .cached(true)
        .submit();
    deployment.run_to_fixpoint();
    let first_count = deployment
        .outcome(handle)
        .unwrap()
        .annotation
        .as_ref()
        .and_then(exspan::core::Annotation::as_count);
    assert!(first_count.is_some());

    // Churn invalidates the affected cached results automatically.
    for event in &schedule {
        deployment.apply_churn_event(event);
    }
    deployment.run_to_fixpoint();
    let invalidations = deployment.session(handle).stats().invalidations;

    let dest = monitored.values[0].clone();
    let surviving = deployment.tuples_shared(0, "bestPathCost");
    if let Some(current) = surviving.iter().find(|t| t.values[0] == dest) {
        let current = current.clone();
        let h = deployment
            .query(&current)
            .issuer(0)
            .repr(Repr::DerivationCount)
            .cached(true)
            .submit();
        deployment.run_to_fixpoint();
        assert!(deployment.outcome(h).unwrap().annotation.is_some());
    }
    let messages = deployment.query_traffic_stats().messages;
    assert!(messages > 0);
    (first_count, surviving, messages, invalidations)
}

#[test]
fn churn_diagnostics_smoke() {
    assert_sharding_invariant("churn_diagnostics", churn_diagnostics_core_path);
}

/// `examples/trust_management.rs`: trust-domain granularity plus acceptance
/// decisions evaluated directly on condensed (BDD) provenance.
fn trust_management_core_path(shards: usize) -> (bool, bool) {
    let mut deployment = setup::mincost_reference(Topology::paper_example(), shards);

    let routes = deployment.tuples_shared(3, "bestPathCost");
    let route_to_a = routes
        .iter()
        .find(|t| t.values[0] == Value::Node(0))
        .expect("d has a route to a")
        .clone();

    let domains: std::collections::BTreeMap<u32, u32> =
        (0..4).map(|n| (n, if n <= 1 { 0 } else { 1 })).collect();
    let outcome = deployment
        .query(&route_to_a)
        .issuer(3)
        .repr(Repr::TrustDomain(domains))
        .traversal(Traversal::Bfs)
        .execute();
    assert!(outcome.annotation.is_some());

    let handle = deployment
        .query(&route_to_a)
        .issuer(3)
        .repr(Repr::Bdd)
        .submit();
    deployment.run_to_fixpoint();

    let accept_all = deployment
        .derivable_under(handle, |_| true)
        .expect("BDD query completed");
    let trusted_links: Vec<_> = [(0u32, 1u32, 3i64), (1, 0, 3)]
        .iter()
        .map(|&(s, d, c)| Tuple::new("link", s, vec![Value::Node(d), Value::Int(c)]).vid())
        .collect();
    let accept_domain0 = deployment
        .derivable_under(handle, |vid| trusted_links.contains(&vid))
        .expect("BDD query completed");

    assert!(accept_all);
    assert!(!accept_domain0);
    (accept_all, accept_domain0)
}

#[test]
fn trust_management_smoke() {
    assert_sharding_invariant("trust_management", trust_management_core_path);
}
