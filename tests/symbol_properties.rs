//! Property tests for the workspace-wide symbol interner: interning must be
//! a lossless round-trip, and — because every figure's byte accounting is a
//! function of string *content* — it must never change a wire size, hash
//! encoding or canonical ordering.

use exspan::types::{wire, Symbol, Tuple, Value};
use proptest::prelude::*;

/// An arbitrary identifier-like string derived from a seed (the proptest
/// shim has no `String` strategy; build one from raw entropy).
fn arb_name() -> impl Strategy<Value = String> {
    (any::<u64>(), 0usize..=24).prop_map(|(seed, len)| {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$";
        (0..len)
            .map(|i| {
                let idx = (seed.rotate_left((i % 64) as u32) ^ (i as u64 * 0x9E37_79B9)) as usize
                    % ALPHABET.len();
                ALPHABET[idx] as char
            })
            .collect()
    })
}

proptest! {
    /// intern → resolve is the identity, and re-interning is pointer-stable.
    #[test]
    fn symbol_round_trips(name in arb_name()) {
        let s = Symbol::intern(&name);
        prop_assert_eq!(s.as_str(), name.as_str());
        prop_assert_eq!(String::from(s), name.clone());
        let again = Symbol::intern(&name);
        prop_assert_eq!(s, again);
        prop_assert!(std::ptr::eq(s.as_str(), again.as_str()));
        prop_assert_eq!(s.len(), name.len());
    }

    /// Interning never changes the wire-size accounting: a string value is
    /// charged its content bytes, and a tuple's relation stays the fixed
    /// 2-byte id the model always assumed.
    #[test]
    fn symbol_preserves_wire_size_accounting(name in arb_name(), other in arb_name()) {
        let v = Value::from(name.as_str());
        prop_assert_eq!(v.wire_size(), 2 + name.len());

        let tuple = Tuple::new(name.as_str(), 7, vec![Value::Int(3), v.clone()]);
        // 7-byte tuple header + 4 (Int) + string content: the relation
        // contributes the same 2 bytes no matter how long its name is.
        prop_assert_eq!(tuple.wire_size(), 7 + 4 + 2 + name.len());
        let renamed = Tuple::new(other.as_str(), 7, vec![Value::Int(3), v.clone()]);
        prop_assert_eq!(
            renamed.wire_size(),
            tuple.wire_size(),
            "relation name length must not leak into the wire size"
        );

        let with_annotation = wire::message_size(std::slice::from_ref(&tuple), 24);
        prop_assert_eq!(
            with_annotation,
            wire::MESSAGE_HEADER_BYTES + wire::UDP_IP_HEADER_BYTES + tuple.wire_size() + 24
        );
    }

    /// The canonical hash encoding (which VIDs are computed from) is a pure
    /// function of the string content.
    #[test]
    fn symbol_preserves_hash_encoding(name in arb_name()) {
        let mut via_symbol = Vec::new();
        Value::from(name.as_str()).encode_for_hash(&mut via_symbol);
        let mut expected = vec![0x03];
        expected.extend_from_slice(&(name.len() as u32).to_be_bytes());
        expected.extend_from_slice(name.as_bytes());
        prop_assert_eq!(via_symbol, expected);
        // And therefore a tuple's VID is unchanged by interning: it matches
        // the digest of the equivalent Value-level encoding.
        let t = Tuple::new(name.as_str(), 3, vec![Value::Node(1)]);
        let u = Tuple::new(name.as_str(), 3, vec![Value::Node(1)]);
        prop_assert_eq!(t.vid(), u.vid());
    }

    /// Symbols (and the values carrying them) order by content, exactly as
    /// the pre-interning `String` representation did — the invariant behind
    /// canonical table-scan order and byte-identical figures.
    #[test]
    fn symbol_orders_by_content(a in arb_name(), b in arb_name()) {
        let sa = Symbol::intern(&a);
        let sb = Symbol::intern(&b);
        prop_assert_eq!(sa.cmp(&sb), a.cmp(&b));
        prop_assert_eq!(
            Value::from(a.as_str()).cmp(&Value::from(b.as_str())),
            a.cmp(&b)
        );
        prop_assert_eq!(sa == sb, a == b);
    }
}
