//! Reproduces the paper's running example end-to-end: the Figure 3 topology,
//! the Figure 4/5 provenance graph of `bestPathCost(@a,c,5)` and the contents
//! of the `prov` / `ruleExec` tables of Tables 1 and 2.

use exspan::core::storage::{all_prov_entries, prov_entries, rule_exec_entry};
use exspan::core::{Deployment, ProvenanceMode, Repr};
use exspan::ndlog::programs;
use exspan::netsim::Topology;
use exspan::setup;
use exspan::types::tuple::rule_exec_id;
use exspan::types::{Tuple, Value};

const A: u32 = 0;
const B: u32 = 1;
const C: u32 = 2;

fn tuple(rel: &str, loc: u32, dst: u32, cost: i64) -> Tuple {
    Tuple::new(rel, loc, vec![Value::Node(dst), Value::Int(cost)])
}

fn reference_system() -> Deployment {
    setup::mincost_reference(Topology::paper_example(), 1)
}

#[test]
fn figure_3_best_path_costs() {
    let system = reference_system();
    // Best path costs from a (Figure 3): b=3, c=5, d=8.
    let expected = [(B, 3), (C, 5), (3u32, 8)];
    let a_best = system.tuples_shared(A, "bestPathCost");
    for (dest, cost) in expected {
        assert!(
            a_best
                .iter()
                .any(|t| **t == tuple("bestPathCost", A, dest, cost)),
            "missing bestPathCost(@a,{dest},{cost}); have {a_best:?}"
        );
    }
}

#[test]
fn table_1_prov_entries_for_the_example() {
    let system = reference_system();
    let engine = system.engine();

    // pathCost(@a,c,5) is derivable in two alternative ways (rows 2-3 of
    // Table 1): via sp1 at a and via sp2 at b.
    let pc_a_c_5 = tuple("pathCost", A, C, 5);
    let entries = prov_entries(engine, A, pc_a_c_5.vid());
    assert_eq!(
        entries.len(),
        2,
        "pathCost(@a,c,5) must have two derivations"
    );
    let mut rlocs: Vec<u32> = entries.iter().map(|e| e.rloc).collect();
    rlocs.sort();
    assert_eq!(rlocs, vec![A, B]);
    assert!(entries.iter().all(|e| !e.is_base()));

    // Base tuples carry the null RID (rows 1, 5, 6 of Table 1).
    let link_a_c = tuple("link", A, C, 5);
    let base = prov_entries(engine, A, link_a_c.vid());
    assert_eq!(base.len(), 1);
    assert!(base[0].is_base());
    assert_eq!(base[0].rloc, A);

    // bestPathCost(@a,c,5) has exactly one derivation, local to a (row 4).
    let bpc = tuple("bestPathCost", A, C, 5);
    let bpc_entries = prov_entries(engine, A, bpc.vid());
    assert_eq!(bpc_entries.len(), 1);
    assert_eq!(bpc_entries[0].rloc, A);

    // The prov table is partitioned by location: node a never stores entries
    // for tuples located at b.
    for entry in all_prov_entries(engine) {
        let at_loc = prov_entries(engine, entry.loc, entry.vid);
        assert!(at_loc.contains(&entry));
    }
}

#[test]
fn table_2_rule_exec_entries_match_figure_5() {
    let system = reference_system();
    let engine = system.engine();

    // The sp2 execution at b (RID3 in Figure 5) has inputs link(@b,a,3) and
    // bestPathCost(@b,c,2), in body order.
    let link_b_a = tuple("link", B, A, 3);
    let bpc_b_c = tuple("bestPathCost", B, C, 2);
    let expected_rid = rule_exec_id("sp2", B, &[link_b_a.vid(), bpc_b_c.vid()]);
    let exec = rule_exec_entry(engine, B, expected_rid)
        .expect("ruleExec entry for sp2@b must exist (Table 2, row 4)");
    assert_eq!(exec.rule, "sp2");
    assert_eq!(exec.rloc, B);
    assert_eq!(exec.vids, vec![link_b_a.vid(), bpc_b_c.vid()]);

    // The derivation it produced is pathCost(@a,c,5): its prov entry points
    // back to this RID at b.
    let pc = tuple("pathCost", A, C, 5);
    let via_b = prov_entries(engine, A, pc.vid())
        .into_iter()
        .find(|e| e.rloc == B)
        .expect("remote derivation entry");
    assert_eq!(via_b.rid, Some(expected_rid));

    // The sp3 execution at a (RID5) takes pathCost(@a,c,5) as its only input.
    let bpc_a_c = tuple("bestPathCost", A, C, 5);
    let sp3_entry = prov_entries(engine, A, bpc_a_c.vid())
        .into_iter()
        .next()
        .expect("prov entry for bestPathCost(@a,c,5)");
    let sp3_exec = rule_exec_entry(engine, A, sp3_entry.rid.unwrap())
        .expect("ruleExec for sp3@a must exist (Table 2, row 2)");
    assert_eq!(sp3_exec.rule, "sp3");
    assert_eq!(sp3_exec.vids, vec![pc.vid()]);
}

#[test]
fn figure_4_provenance_polynomial_of_best_path_cost() {
    let mut system = reference_system();
    let target = tuple("bestPathCost", A, C, 5);
    let outcome = system
        .query(&target)
        .issuer(3)
        .repr(Repr::Polynomial)
        .execute();
    let expr = outcome.annotation.expect("query completes");
    let expr = expr.as_expr().unwrap();
    // Two alternative derivations (the two paths of Figure 4).
    assert_eq!(expr.num_derivations(), 2);
    // The base tuples involved are exactly link(@a,c,5), link(@b,a,3) and
    // link(@b,c,2).
    let bases = expr.base_tuples();
    let expected: std::collections::BTreeSet<_> = [
        tuple("link", A, C, 5).vid(),
        tuple("link", B, A, 3).vid(),
        tuple("link", B, C, 2).vid(),
    ]
    .into_iter()
    .collect();
    assert_eq!(bases, expected);
    // The printed polynomial mentions both rule executions.
    let printed = expr.to_string();
    assert!(printed.contains("sp1@n0") || printed.contains("sp2@n1"));
}

#[test]
fn node_level_provenance_is_a_b() {
    // §3: the node-level provenance of bestPathCost(@a,c,5) is {a, b}.
    let mut system = reference_system();
    let target = tuple("bestPathCost", A, C, 5);
    let outcome = system
        .query(&target)
        .issuer(3)
        .repr(Repr::NodeSet)
        .execute();
    let nodes = outcome.annotation.expect("query completes");
    assert_eq!(
        nodes
            .as_nodes()
            .unwrap()
            .iter()
            .copied()
            .collect::<Vec<_>>(),
        vec![A, B]
    );
}

#[test]
fn provenance_graph_is_acyclic() {
    // §4.1 models provenance as an acyclic graph; walk every edge
    // (prov -> ruleExec -> child prov) and check no VID is its own ancestor.
    let system = reference_system();
    let engine = system.engine();
    let entries = all_prov_entries(engine);
    for entry in &entries {
        let mut stack = vec![entry.vid];
        let mut visited = std::collections::HashSet::new();
        let mut depth = 0usize;
        while let Some(vid) = stack.pop() {
            depth += 1;
            assert!(depth < 10_000, "provenance traversal did not terminate");
            for e in prov_entries(engine, entry.loc, vid)
                .into_iter()
                .chain(entries.iter().filter(|e| e.vid == vid).cloned())
            {
                if let Some(rid) = e.rid {
                    if let Some(exec) = rule_exec_entry(engine, e.rloc, rid) {
                        for child in exec.vids {
                            assert_ne!(child, entry.vid, "cycle through {:?}", entry.vid);
                            if visited.insert(child) {
                                stack.push(child);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn reference_mode_overhead_is_small_on_the_example() {
    // The reference-based run exchanges more bytes than the bare protocol but
    // far fewer than value-based provenance — the core claim of the paper.
    let programs = programs::mincost();
    let run =
        |mode| setup::converged(programs.clone(), Topology::paper_example(), mode, 1).total_bytes();
    let none = run(ProvenanceMode::None);
    let reference = run(ProvenanceMode::Reference);
    let value = run(ProvenanceMode::ValueBdd);
    assert!(none > 0);
    assert!(reference > none, "reference-based must add some overhead");
    assert!(
        value > reference,
        "value-based must cost more than reference-based"
    );
}
