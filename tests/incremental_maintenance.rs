//! Incremental maintenance correctness: after arbitrary link insertions and
//! deletions, the incrementally maintained state (and its provenance) must
//! match a system recomputed from scratch on the final topology.

use exspan::core::storage::{all_prov_entries, all_rule_exec_entries, rule_exec_entry};
use exspan::core::{Deployment, ProvenanceMode};
use exspan::ndlog::programs;
use exspan::netsim::{LinkClass, LinkProps, Topology};
use exspan::setup;
use exspan::types::Tuple;
use std::sync::Arc;

fn run_fresh(topology: Topology, mode: ProvenanceMode) -> Deployment {
    setup::converged(programs::mincost(), topology, mode, 1)
}

fn best_path_costs(deployment: &Deployment) -> Vec<Arc<Tuple>> {
    deployment.tuples_everywhere_shared("bestPathCost")
}

#[test]
fn deletion_then_recompute_matches_scratch_run() {
    // Start from the paper example, delete the a-c link, and compare with a
    // fresh run on the 4-link topology.
    let mut incremental = run_fresh(Topology::paper_example(), ProvenanceMode::Reference);
    incremental.remove_link(0, 2);
    incremental.run_to_fixpoint();

    let mut final_topology = Topology::paper_example();
    final_topology.remove_link(0, 2);
    let scratch = run_fresh(final_topology, ProvenanceMode::Reference);

    assert_eq!(
        best_path_costs(&incremental),
        best_path_costs(&scratch),
        "incremental deletion must converge to the same routing state as recomputation"
    );
}

#[test]
fn insertion_then_recompute_matches_scratch_run() {
    // Start without the a-c link, add it, and compare with the full example.
    let mut initial = Topology::paper_example();
    initial.remove_link(0, 2);
    let mut incremental = run_fresh(initial, ProvenanceMode::Reference);
    incremental.add_link(
        0,
        2,
        LinkProps {
            cost: 5,
            ..LinkProps::from_class(LinkClass::Custom)
        },
    );
    incremental.run_to_fixpoint();

    let scratch = run_fresh(Topology::paper_example(), ProvenanceMode::Reference);
    assert_eq!(best_path_costs(&incremental), best_path_costs(&scratch));
}

#[test]
fn repeated_churn_on_testbed_converges_to_scratch_state() {
    let base = Topology::testbed_ring(12, 5);
    let mut incremental = run_fresh(base.clone(), ProvenanceMode::Reference);

    // Remove two ring links and add one chord, in several steps.
    let removals = [(0u32, 1u32), (6u32, 7u32)];
    let addition = (2u32, 9u32);

    let mut final_topology = base;
    for &(a, b) in &removals {
        incremental.remove_link(a, b);
        incremental.run_to_fixpoint();
        final_topology.remove_link(a, b);
    }
    if !final_topology.has_link(addition.0, addition.1) {
        let props = LinkProps::from_class(LinkClass::Testbed);
        incremental.add_link(addition.0, addition.1, props);
        incremental.run_to_fixpoint();
        final_topology.add_link(addition.0, addition.1, props);
    }

    let scratch = run_fresh(final_topology, ProvenanceMode::Reference);
    assert_eq!(
        best_path_costs(&incremental),
        best_path_costs(&scratch),
        "routing state diverged after churn"
    );
}

#[test]
fn provenance_graph_has_no_dangling_pointers_after_churn() {
    let mut system = run_fresh(Topology::paper_example(), ProvenanceMode::Reference);
    system.remove_link(1, 2); // b-c
    system.run_to_fixpoint();
    system.add_link(
        1,
        2,
        LinkProps {
            cost: 2,
            ..LinkProps::from_class(LinkClass::Custom)
        },
    );
    system.run_to_fixpoint();

    // Every derived prov entry must reference an existing ruleExec entry, and
    // every ruleExec child must itself have prov entries somewhere.
    let engine = system.engine();
    let prov = all_prov_entries(engine);
    let execs = all_rule_exec_entries(engine);
    assert!(!prov.is_empty());
    assert!(!execs.is_empty());
    for entry in prov.iter().filter(|e| !e.is_base()) {
        let exec = rule_exec_entry(engine, entry.rloc, entry.rid.unwrap());
        assert!(
            exec.is_some(),
            "prov entry {entry:?} references a missing ruleExec entry"
        );
    }
    for exec in &execs {
        for child in &exec.vids {
            assert!(
                prov.iter().any(|p| p.vid == *child),
                "ruleExec {exec:?} references child {child:?} with no prov entry"
            );
        }
    }
}

#[test]
fn value_mode_tracks_state_under_churn_too() {
    let mut system = run_fresh(Topology::paper_example(), ProvenanceMode::ValueBdd);
    let before = best_path_costs(&system);
    assert!(!before.is_empty());
    system.remove_link(0, 1);
    system.run_to_fixpoint();
    let scratch = {
        let mut t = Topology::paper_example();
        t.remove_link(0, 1);
        run_fresh(t, ProvenanceMode::ValueBdd)
    };
    assert_eq!(best_path_costs(&system), best_path_costs(&scratch));
    // The value policy still serves local derivability answers, through the
    // closure-scoped accessor (no MutexGuard escapes).
    let target = best_path_costs(&system).remove(0);
    assert_eq!(
        system.with_value_provenance(|p| p.derivable_under(&target, |_| true)),
        Some(true)
    );
}

#[test]
fn centralized_mode_mirrors_provenance_to_the_server() {
    let mut system = run_fresh(
        Topology::paper_example(),
        ProvenanceMode::Centralized { server: 3 },
    );
    system.run_to_fixpoint();
    let engine = system.engine();
    let mirrored = engine.tuples_shared(3, "provCentral");
    let local: usize = all_prov_entries(engine).len();
    assert!(
        !mirrored.is_empty(),
        "the central server must receive mirrored prov entries"
    );
    assert!(
        mirrored.len() >= local / 2,
        "most prov entries should be mirrored (got {} of {})",
        mirrored.len(),
        local
    );
    // Centralized mode costs more bandwidth than plain reference mode.
    let reference = run_fresh(Topology::paper_example(), ProvenanceMode::Reference);
    assert!(system.total_bytes() > reference.total_bytes());
}
