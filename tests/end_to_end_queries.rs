//! End-to-end distributed query tests on a 20-node testbed topology:
//! representation consistency, traversal orders, caching and invalidation,
//! and agreement between reference-based and value-based provenance.

use exspan::core::{
    BddRepr, DerivabilityRepr, DerivationCountRepr, NodeSetRepr, PolynomialRepr, ProvenanceMode,
    ProvenanceSystem, QueryEngine, SystemConfig, TraversalOrder,
};
use exspan::ndlog::programs;
use exspan::netsim::Topology;
use exspan::types::{Tuple, Value};

fn reference_system(nodes: usize, seed: u64) -> ProvenanceSystem {
    let mut system = ProvenanceSystem::new(
        &programs::mincost(),
        Topology::testbed_ring(nodes, seed),
        SystemConfig {
            mode: ProvenanceMode::Reference,
            ..Default::default()
        },
    );
    system.seed_links();
    system.run_to_fixpoint();
    system
}

fn some_targets(system: &ProvenanceSystem, count: usize) -> Vec<Tuple> {
    let mut out = Vec::new();
    for n in 0..system.engine().topology().num_nodes() as u32 {
        for t in system.engine().tuples(n, "bestPathCost") {
            out.push(t);
            if out.len() >= count {
                return out;
            }
        }
    }
    out
}

#[test]
fn representations_agree_on_the_same_tuple() {
    let mut system = reference_system(12, 3);
    let targets = some_targets(&system, 6);
    assert!(!targets.is_empty());
    for target in targets {
        let issuer = (target.location + 3) % 12;

        let (_q, poly) = system.query_provenance(
            issuer,
            &target,
            Box::new(PolynomialRepr),
            TraversalOrder::Bfs,
        );
        let poly = poly.annotation.expect("polynomial query completes");
        let expr = poly.as_expr().unwrap();

        let (_q, count) = system.query_provenance(
            issuer,
            &target,
            Box::new(DerivationCountRepr),
            TraversalOrder::Bfs,
        );
        let count = count.annotation.unwrap().as_count().unwrap();
        assert_eq!(
            expr.num_derivations(),
            count,
            "#DERIVATION must equal the number of monomials in the polynomial for {target}"
        );
        assert!(count >= 1);

        let (_q, nodes) =
            system.query_provenance(issuer, &target, Box::new(NodeSetRepr), TraversalOrder::Bfs);
        let nodes = nodes.annotation.unwrap();
        let nodes = nodes.as_nodes().unwrap();
        assert!(
            nodes.contains(&target.location),
            "the tuple's own node participates in its derivation"
        );

        let (_q, derivable) = system.query_provenance(
            issuer,
            &target,
            Box::new(DerivabilityRepr::default()),
            TraversalOrder::Bfs,
        );
        assert_eq!(derivable.annotation.unwrap().as_bool(), Some(true));

        // BDD (absorption) provenance is satisfiable when everything is
        // trusted and unsatisfiable when nothing is.
        let (qe, bdd) = system.query_provenance(
            issuer,
            &target,
            Box::new(BddRepr::new()),
            TraversalOrder::Bfs,
        );
        let ann = bdd.annotation.unwrap();
        let repr = qe.repr().as_any().downcast_ref::<BddRepr>().unwrap();
        assert!(repr.derivable_under(&ann, |_| true));
        assert!(!repr.derivable_under(&ann, |_| false));
    }
}

#[test]
fn traversal_orders_return_identical_full_results() {
    let mut system = reference_system(12, 5);
    let targets = some_targets(&system, 4);
    for target in targets {
        let mut results = Vec::new();
        for order in [TraversalOrder::Bfs, TraversalOrder::Dfs] {
            let (_q, out) =
                system.query_provenance(0, &target, Box::new(DerivationCountRepr), order);
            results.push(out.annotation.unwrap().as_count().unwrap());
        }
        assert_eq!(
            results[0], results[1],
            "BFS and DFS must agree on the derivation count of {target}"
        );
    }
}

#[test]
fn dfs_threshold_stops_early_and_never_exceeds_full_traversal() {
    let mut system = reference_system(16, 9);
    let targets = some_targets(&system, 8);
    for target in targets {
        let (qe_full, full) = system.query_provenance(
            1,
            &target,
            Box::new(DerivationCountRepr),
            TraversalOrder::Bfs,
        );
        let full_count = full.annotation.unwrap().as_count().unwrap();
        let full_bytes = qe_full.stats().bytes;

        let (qe_thr, thr) = system.query_provenance(
            1,
            &target,
            Box::new(DerivationCountRepr),
            TraversalOrder::DfsThreshold(1),
        );
        let thr_count = thr.annotation.unwrap().as_count().unwrap();
        // The threshold query may stop early, so it reports at most the full
        // count, and it must report more than the threshold iff the full
        // count does.
        assert!(thr_count <= full_count);
        assert_eq!(thr_count > 1, full_count > 1);
        assert!(
            qe_thr.stats().bytes <= full_bytes,
            "threshold pruning must not send more bytes than the full traversal"
        );
    }
}

#[test]
fn random_moonwalk_explores_a_subset() {
    let mut system = reference_system(12, 13);
    let target = some_targets(&system, 1).remove(0);
    let (_q, full) = system.query_provenance(
        0,
        &target,
        Box::new(DerivationCountRepr),
        TraversalOrder::Bfs,
    );
    let (_q, walk) = system.query_provenance(
        0,
        &target,
        Box::new(DerivationCountRepr),
        TraversalOrder::RandomMoonwalk { fanout: 1, seed: 7 },
    );
    let full = full.annotation.unwrap().as_count().unwrap();
    let walk = walk.annotation.unwrap().as_count().unwrap();
    assert!(walk >= 1);
    assert!(walk <= full);
}

#[test]
fn caching_reduces_traffic_and_is_invalidated_correctly() {
    let mut system = reference_system(12, 21);
    let targets = some_targets(&system, 5);

    // Without caching: repeated identical queries cost the same every time.
    let mut qe = QueryEngine::new(Box::new(PolynomialRepr), TraversalOrder::Bfs);
    qe.set_caching(false);
    for t in &targets {
        qe.query_now(system.engine_mut(), 0, t);
        qe.run(system.engine_mut());
    }
    for t in &targets {
        qe.query_now(system.engine_mut(), 0, t);
        qe.run(system.engine_mut());
    }
    let uncached_bytes = qe.stats().bytes;

    // With caching: the second round is nearly free and hits the cache.
    let mut qe = QueryEngine::new(Box::new(PolynomialRepr), TraversalOrder::Bfs);
    qe.set_caching(true);
    for t in &targets {
        qe.query_now(system.engine_mut(), 0, t);
        qe.run(system.engine_mut());
    }
    let first_round = qe.stats().bytes;
    for t in &targets {
        qe.query_now(system.engine_mut(), 0, t);
        qe.run(system.engine_mut());
    }
    let cached_bytes = qe.stats().bytes;
    assert!(qe.stats().cache_hits > 0, "second round must hit the cache");
    assert!(
        cached_bytes - first_round < first_round,
        "cached round must be cheaper than the first round"
    );
    assert!(cached_bytes < uncached_bytes);

    // All answers agree with a fresh, uncached query engine.
    let baseline_counts: Vec<u64> = targets
        .iter()
        .map(|t| {
            let (_q, o) =
                system.query_provenance(0, t, Box::new(DerivationCountRepr), TraversalOrder::Bfs);
            o.annotation.unwrap().as_count().unwrap()
        })
        .collect();

    // Invalidate everything that depends on one link and re-query: results
    // must still be correct (recomputed where needed).
    let some_link = system.engine().tuples(0, "link").remove(0);
    qe.invalidate(some_link.vid());
    for (t, expected) in targets.iter().zip(baseline_counts) {
        let idx = qe.query_now(system.engine_mut(), 0, t);
        qe.run(system.engine_mut());
        // The cached polynomial still describes the same derivations.
        let ann = qe.outcomes()[idx].annotation.clone().unwrap();
        assert_eq!(ann.as_expr().unwrap().num_derivations(), expected);
    }
}

#[test]
fn value_and_reference_provenance_agree_on_derivability() {
    // Run the same protocol in value-based and reference-based modes; for a
    // sample of tuples, the value-mode BDD and a reference-mode BDD query
    // must agree on derivability under random trust assignments.
    let topo = Topology::testbed_ring(10, 33);
    let mut value_system =
        ProvenanceSystem::with_mode(&programs::mincost(), topo.clone(), ProvenanceMode::ValueBdd);
    value_system.seed_links();
    value_system.run_to_fixpoint();

    let mut ref_system =
        ProvenanceSystem::with_mode(&programs::mincost(), topo, ProvenanceMode::Reference);
    ref_system.seed_links();
    ref_system.run_to_fixpoint();

    let targets = some_targets(&ref_system, 5);
    for target in targets {
        // Reference-based: distributed BDD query.
        let (qe, outcome) =
            ref_system.query_provenance(0, &target, Box::new(BddRepr::new()), TraversalOrder::Bfs);
        let ann = outcome.annotation.unwrap();
        let repr = qe.repr().as_any().downcast_ref::<BddRepr>().unwrap();

        // Value-based: annotation available locally.
        let value = value_system.value_provenance().unwrap();

        // Both derivable when everything is trusted, neither when nothing is.
        assert!(repr.derivable_under(&ann, |_| true));
        assert!(value.derivable_under(&target, |_| true));
        assert!(!repr.derivable_under(&ann, |_| false));
        assert!(!value.derivable_under(&target, |_| false));

        // Under "trust only even-numbered nodes' links": both agree.
        let trust_even = |vid: exspan::types::Vid| {
            // Determine the owning node by scanning link tuples.
            ref_system
                .engine()
                .tuples_everywhere("link")
                .iter()
                .find(|l| l.vid() == vid)
                .map(|l| l.location % 2 == 0)
                .unwrap_or(false)
        };
        assert_eq!(
            repr.derivable_under(&ann, trust_even),
            value.derivable_under(&target, trust_even),
            "value- and reference-based derivability disagree for {target}"
        );
    }
}

#[test]
fn packet_forwarding_with_provenance_delivers_packets() {
    let mut system = ProvenanceSystem::with_mode(
        &programs::packet_forward(),
        Topology::testbed_ring(8, 17),
        ProvenanceMode::Reference,
    );
    system.seed_links();
    system.run_to_fixpoint();
    // Send packets between several pairs.
    for (src, dst) in [(0u32, 4u32), (1, 5), (7, 2)] {
        let packet = Tuple::new(
            "ePacket",
            src,
            vec![Value::Node(src), Value::Node(dst), Value::Payload(1024)],
        );
        system.engine_mut().insert_base(src, packet);
    }
    system.run_to_fixpoint();
    for (src, dst) in [(0u32, 4u32), (1, 5), (7, 2)] {
        let received = system.engine().tuples(dst, "recvPacket");
        assert!(
            received.iter().any(|t| t.values[0] == Value::Node(src)),
            "packet from {src} to {dst} was not delivered: {received:?}"
        );
    }
}
