//! End-to-end distributed query tests on a 20-node testbed topology:
//! representation consistency, traversal orders, caching and invalidation,
//! and agreement between reference-based and value-based provenance — all
//! through the `Deployment` API.

use exspan::core::{Deployment, ProvenanceMode, QueryHandle, Repr, Traversal};
use exspan::ndlog::programs;
use exspan::netsim::Topology;
use exspan::setup;
use exspan::types::{Tuple, Value};
use std::sync::Arc;

fn reference_deployment(nodes: usize, seed: u64) -> Deployment {
    setup::mincost_reference(Topology::testbed_ring(nodes, seed), 1)
}

fn some_targets(deployment: &Deployment, count: usize) -> Vec<Arc<Tuple>> {
    let mut out = Vec::new();
    for n in 0..deployment.topology().num_nodes() as u32 {
        for t in deployment.tuples_shared(n, "bestPathCost") {
            out.push(t);
            if out.len() >= count {
                return out;
            }
        }
    }
    out
}

/// Bytes the session of `handle` spent so far — used to measure the cost of
/// individual queries as deltas.
fn session_bytes(deployment: &Deployment, handle: QueryHandle) -> u64 {
    deployment.session(handle).stats().bytes
}

#[test]
fn representations_agree_on_the_same_tuple() {
    let mut deployment = reference_deployment(12, 3);
    let targets = some_targets(&deployment, 6);
    assert!(!targets.is_empty());
    for target in targets {
        let issuer = (target.location + 3) % 12;

        let poly = deployment
            .query(&target)
            .issuer(issuer)
            .repr(Repr::Polynomial)
            .execute();
        let poly = poly.annotation.expect("polynomial query completes");
        let expr = poly.as_expr().unwrap();

        let count = deployment
            .query(&target)
            .issuer(issuer)
            .repr(Repr::DerivationCount)
            .execute();
        let count = count.annotation.unwrap().as_count().unwrap();
        assert_eq!(
            expr.num_derivations(),
            count,
            "#DERIVATION must equal the number of monomials in the polynomial for {target}"
        );
        assert!(count >= 1);

        let nodes = deployment
            .query(&target)
            .issuer(issuer)
            .repr(Repr::NodeSet)
            .execute();
        let nodes = nodes.annotation.unwrap();
        let nodes = nodes.as_nodes().unwrap();
        assert!(
            nodes.contains(&target.location),
            "the tuple's own node participates in its derivation"
        );

        let derivable = deployment
            .query(&target)
            .issuer(issuer)
            .repr(Repr::Derivability)
            .execute();
        assert_eq!(derivable.annotation.unwrap().as_bool(), Some(true));

        // BDD (absorption) provenance is satisfiable when everything is
        // trusted and unsatisfiable when nothing is.
        let handle = deployment
            .query(&target)
            .issuer(issuer)
            .repr(Repr::Bdd)
            .submit();
        deployment.run_to_fixpoint();
        assert_eq!(deployment.derivable_under(handle, |_| true), Some(true));
        assert_eq!(deployment.derivable_under(handle, |_| false), Some(false));
    }
}

#[test]
fn traversal_orders_return_identical_full_results() {
    let mut deployment = reference_deployment(12, 5);
    let targets = some_targets(&deployment, 4);
    for target in targets {
        let mut results = Vec::new();
        for order in [Traversal::Bfs, Traversal::Dfs] {
            let out = deployment
                .query(&target)
                .issuer(0)
                .repr(Repr::DerivationCount)
                .traversal(order)
                .execute();
            results.push(out.annotation.unwrap().as_count().unwrap());
        }
        assert_eq!(
            results[0], results[1],
            "BFS and DFS must agree on the derivation count of {target}"
        );
    }
}

#[test]
fn dfs_threshold_stops_early_and_never_exceeds_full_traversal() {
    let mut deployment = reference_deployment(16, 9);
    let targets = some_targets(&deployment, 8);
    for target in targets {
        let full_handle = deployment
            .query(&target)
            .issuer(1)
            .repr(Repr::DerivationCount)
            .traversal(Traversal::Bfs)
            .submit();
        let full_before = session_bytes(&deployment, full_handle);
        deployment.run_to_fixpoint();
        let full = deployment.outcome(full_handle).unwrap().clone();
        let full_count = full.annotation.unwrap().as_count().unwrap();
        let full_bytes = session_bytes(&deployment, full_handle) - full_before;

        let thr_handle = deployment
            .query(&target)
            .issuer(1)
            .repr(Repr::DerivationCount)
            .traversal(Traversal::DfsThreshold(1))
            .submit();
        let thr_before = session_bytes(&deployment, thr_handle);
        deployment.run_to_fixpoint();
        let thr = deployment.outcome(thr_handle).unwrap().clone();
        let thr_count = thr.annotation.unwrap().as_count().unwrap();
        let thr_bytes = session_bytes(&deployment, thr_handle) - thr_before;
        // The threshold query may stop early, so it reports at most the full
        // count, and it must report more than the threshold iff the full
        // count does.
        assert!(thr_count <= full_count);
        assert_eq!(thr_count > 1, full_count > 1);
        assert!(
            thr_bytes <= full_bytes,
            "threshold pruning must not send more bytes than the full traversal"
        );
    }
}

#[test]
fn random_moonwalk_explores_a_subset() {
    let mut deployment = reference_deployment(12, 13);
    let target = some_targets(&deployment, 1).remove(0);
    let full = deployment
        .query(&target)
        .issuer(0)
        .repr(Repr::DerivationCount)
        .traversal(Traversal::Bfs)
        .execute();
    let walk = deployment
        .query(&target)
        .issuer(0)
        .repr(Repr::DerivationCount)
        .traversal(Traversal::RandomMoonwalk { fanout: 1, seed: 7 })
        .execute();
    let full = full.annotation.unwrap().as_count().unwrap();
    let walk = walk.annotation.unwrap().as_count().unwrap();
    assert!(walk >= 1);
    assert!(walk <= full);
}

#[test]
fn caching_reduces_traffic_and_is_invalidated_correctly() {
    let mut deployment = reference_deployment(12, 21);
    let targets = some_targets(&deployment, 5);

    // Two sessions over the same deployment: identical configuration except
    // caching.  Queries with equal configs share the session (and cache).
    let run_round = |deployment: &mut Deployment, cached: bool| -> (QueryHandle, u64) {
        let mut last = None;
        for t in &targets {
            let h = deployment
                .query(t)
                .issuer(0)
                .repr(Repr::Polynomial)
                .cached(cached)
                .submit();
            deployment.run_to_fixpoint();
            last = Some(h);
        }
        let h = last.expect("targets nonempty");
        (h, deployment.session(h).stats().bytes)
    };

    // Without caching: repeated identical queries cost the same every time.
    let (_h, first_uncached) = run_round(&mut deployment, false);
    let (h_uncached, uncached_bytes) = run_round(&mut deployment, false);
    assert_eq!(
        uncached_bytes,
        2 * first_uncached,
        "without caching the second round costs exactly as much as the first"
    );

    // With caching: the second round is nearly free and hits the cache.
    let (h_cached, first_round) = run_round(&mut deployment, true);
    let (_, cached_bytes) = run_round(&mut deployment, true);
    assert!(
        deployment.session(h_cached).stats().cache_hits > 0,
        "second round must hit the cache"
    );
    assert!(
        cached_bytes - first_round < first_round,
        "cached round must be cheaper than the first round"
    );
    assert!(cached_bytes < uncached_bytes);
    assert_ne!(
        deployment.session(h_cached).cache_entries(),
        0,
        "cached session holds results"
    );
    assert_eq!(
        deployment.session(h_uncached).cache_entries(),
        0,
        "uncached session holds none"
    );

    // All answers agree with fresh uncached derivation-count queries.
    let baseline_counts: Vec<u64> = targets
        .iter()
        .map(|t| {
            deployment
                .query(t)
                .issuer(0)
                .repr(Repr::DerivationCount)
                .execute()
                .annotation
                .unwrap()
                .as_count()
                .unwrap()
        })
        .collect();

    // Invalidate everything that depends on one link and re-query: results
    // must still be correct (recomputed where needed).
    let some_link = deployment.tuples_shared(0, "link").remove(0);
    deployment.invalidate(some_link.vid());
    for (t, expected) in targets.iter().zip(baseline_counts) {
        let ann = deployment
            .query(t)
            .issuer(0)
            .repr(Repr::Polynomial)
            .cached(true)
            .execute()
            .annotation
            .unwrap();
        assert_eq!(ann.as_expr().unwrap().num_derivations(), expected);
    }
}

#[test]
fn value_and_reference_provenance_agree_on_derivability() {
    // Run the same protocol in value-based and reference-based modes; for a
    // sample of tuples, the value-mode BDD and a reference-mode BDD query
    // must agree on derivability under random trust assignments.
    let topo = Topology::testbed_ring(10, 33);
    let value_deployment = setup::converged(
        programs::mincost(),
        topo.clone(),
        ProvenanceMode::ValueBdd,
        1,
    );
    let mut ref_deployment = setup::mincost_reference(topo, 1);

    let targets = some_targets(&ref_deployment, 5);
    for target in targets {
        // Reference-based: distributed BDD query.
        let handle = ref_deployment
            .query(&target)
            .issuer(0)
            .repr(Repr::Bdd)
            .submit();
        ref_deployment.run_to_fixpoint();

        // Both derivable when everything is trusted, neither when nothing is.
        assert_eq!(ref_deployment.derivable_under(handle, |_| true), Some(true));
        assert_eq!(
            ref_deployment.derivable_under(handle, |_| false),
            Some(false)
        );
        assert_eq!(
            value_deployment.with_value_provenance(|p| p.derivable_under(&target, |_| true)),
            Some(true)
        );
        assert_eq!(
            value_deployment.with_value_provenance(|p| p.derivable_under(&target, |_| false)),
            Some(false)
        );

        // Under "trust only even-numbered nodes' links": both agree.
        let links = ref_deployment.tuples_everywhere_shared("link");
        let trust_even = |vid: exspan::types::Vid| {
            links
                .iter()
                .find(|l| l.vid() == vid)
                .is_some_and(|l| l.location % 2 == 0)
        };
        assert_eq!(
            ref_deployment.derivable_under(handle, trust_even),
            value_deployment.with_value_provenance(|p| p.derivable_under(&target, trust_even)),
            "value- and reference-based derivability disagree for {target}"
        );
    }
}

#[test]
fn packet_forwarding_with_provenance_delivers_packets() {
    let mut deployment = setup::converged(
        programs::packet_forward(),
        Topology::testbed_ring(8, 17),
        ProvenanceMode::Reference,
        1,
    );
    // Send packets between several pairs.
    for (src, dst) in [(0u32, 4u32), (1, 5), (7, 2)] {
        let packet = Tuple::new(
            "ePacket",
            src,
            vec![Value::Node(src), Value::Node(dst), Value::Payload(1024)],
        );
        deployment.insert_base(src, packet);
    }
    deployment.run_to_fixpoint();
    for (src, dst) in [(0u32, 4u32), (1, 5), (7, 2)] {
        let received = deployment.tuples_shared(dst, "recvPacket");
        assert!(
            received.iter().any(|t| t.values[0] == Value::Node(src)),
            "packet from {src} to {dst} was not delivered: {received:?}"
        );
    }
}
