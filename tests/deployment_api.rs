//! Integration tests of the first-class `Deployment` API: builder
//! validation, and — the tentpole guarantee — churn and multiple concurrent
//! provenance queries progressing together on *one* simulated clock, with
//! bit-identical results across shard counts, in every provenance mode.
//!
//! No `engine_mut()` escape hatch is used anywhere: everything goes through
//! the typed deployment surface.

use exspan::core::{BuildError, Exspan, ProvenanceMode, QueryOutcome, Repr, Traversal};
use exspan::ndlog::programs;
use exspan::netsim::{ChurnModel, LinkClass, LinkProps, Topology};
use exspan::types::Tuple;
use std::sync::Arc;

/// A 12-node ring of stub-stub links (the link class the churn model
/// mutates).
fn ring_topology() -> Topology {
    let mut topology = Topology::empty(12);
    for i in 0..12u32 {
        topology.add_link(i, (i + 1) % 12, LinkProps::from_class(LinkClass::StubStub));
    }
    topology
}

/// Everything observable about one churn-plus-concurrent-queries run.
#[derive(Debug, PartialEq)]
struct Observed {
    outcomes: Vec<(u32, Option<f64>, Option<String>)>,
    routes: Vec<Arc<Tuple>>,
    total_bytes: u64,
    query_bytes: u64,
}

/// Runs MINCOST to fixpoint, then schedules a churn workload *and* several
/// provenance queries inside the same time window and advances everything
/// with the deployment's clock alone.
fn churn_with_concurrent_queries(mode: ProvenanceMode, shards: usize) -> Observed {
    let mut deployment = Exspan::builder()
        .program(programs::mincost())
        .topology(ring_topology())
        .mode(mode)
        .shards(shards)
        .build()
        .expect("valid deployment");
    deployment.run_to_fixpoint();
    let start = deployment.now();

    // A churn schedule spanning one second of simulated time.
    let churn = ChurnModel {
        interval: 0.25,
        changes_per_batch: 1,
        seed: 5,
    };
    let schedule = churn.schedule(deployment.topology(), 1.0);
    assert!(!schedule.is_empty(), "churn model produced no events");
    let churn_end = start + schedule.iter().map(|e| e.time).fold(0.0, f64::max);
    for event in &schedule {
        deployment.schedule_churn_event(event, start + event.time);
    }

    // Three queries issued at staggered times *inside* the churn window,
    // with different sessions (different representations), so query
    // messages and maintenance deltas interleave on the event queue.
    let targets: Vec<Arc<Tuple>> = deployment.tuples_shared(0, "bestPathCost");
    assert!(targets.len() >= 2);
    let handles = vec![
        deployment
            .query(&targets[0])
            .issuer(6)
            .repr(Repr::DerivationCount)
            .traversal(Traversal::Bfs)
            .at(start + 0.05)
            .submit(),
        deployment
            .query(&targets[1])
            .issuer(3)
            .repr(Repr::NodeSet)
            .cached(true)
            .at(start + 0.10)
            .submit(),
        deployment
            .query(&targets[0])
            .issuer(9)
            .repr(Repr::Polynomial)
            .at(start + 0.60)
            .submit(),
    ];

    // Advance the one clock in slices.  Midway, the early queries must have
    // completed while churn events are still pending — queries overlap
    // ongoing maintenance instead of monopolizing the engine.
    deployment.run_until(start + 0.5);
    assert!(deployment.now() <= start + 0.5 + 1e-9);
    assert!(
        deployment.outcome(handles[0]).unwrap().is_complete(),
        "query issued at +0.05 must complete before +0.5"
    );
    assert!(
        deployment.outcome(handles[1]).unwrap().is_complete(),
        "query issued at +0.10 must complete before +0.5"
    );
    assert!(
        !deployment.outcome(handles[2]).unwrap().is_complete(),
        "query scheduled at +0.6 must not have run yet"
    );

    deployment.run_to_fixpoint();

    // Every query completed, every completion lies inside or before the end
    // of the churn window's cascades, and the two early completions precede
    // the *scheduled* end of churn — concurrency on one clock.
    for handle in &handles {
        let outcome = deployment.outcome(*handle).unwrap();
        assert!(outcome.is_complete(), "query never completed: {outcome:?}");
        assert!(
            outcome.annotation.is_some(),
            "completed query carries an annotation"
        );
    }
    for handle in &handles[..2] {
        let completed = deployment.outcome(*handle).unwrap().completed_at.unwrap();
        assert!(
            completed < churn_end,
            "early query completed at {completed}, after the churn window {churn_end}"
        );
    }

    let fmt_outcome = |o: &QueryOutcome| {
        (
            o.issuer,
            o.latency(),
            o.annotation.as_ref().map(|a| format!("{a:?}")),
        )
    };
    Observed {
        outcomes: deployment.outcomes().iter().map(fmt_outcome).collect(),
        routes: deployment.tuples_everywhere_shared("bestPathCost"),
        total_bytes: deployment.total_bytes(),
        query_bytes: deployment.query_traffic_stats().bytes,
    }
}

#[test]
fn churn_and_concurrent_queries_share_one_clock_in_every_mode() {
    for mode in [
        ProvenanceMode::None,
        ProvenanceMode::Reference,
        ProvenanceMode::ValueBdd,
        ProvenanceMode::Centralized { server: 0 },
    ] {
        let sequential = churn_with_concurrent_queries(mode, 1);
        assert!(
            !sequential.routes.is_empty(),
            "{mode:?}: churned ring lost all routes"
        );
        assert!(
            sequential.query_bytes > 0,
            "{mode:?}: queries generated no traffic"
        );
        let sharded = churn_with_concurrent_queries(mode, 3);
        assert_eq!(
            sequential, sharded,
            "{mode:?}: sharded run diverged from the sequential oracle"
        );
    }
}

#[test]
fn queries_survive_interleaved_route_withdrawal() {
    // Delete the link under a monitored route *between* two queries for it:
    // the second query must observe the updated provenance on the same clock.
    let mut deployment = Exspan::builder()
        .program(programs::mincost())
        .topology(Topology::paper_example())
        .mode(ProvenanceMode::Reference)
        .build()
        .unwrap();
    deployment.run_to_fixpoint();

    // pathCost(@a,c,5) has two derivations (direct link and via b).
    let target = deployment
        .tuples_shared(0, "bestPathCost")
        .into_iter()
        .find(|t| t.values[0] == exspan::types::Value::Node(2))
        .unwrap();
    let before = deployment
        .query(&target)
        .issuer(3)
        .repr(Repr::DerivationCount)
        .execute();
    assert_eq!(before.annotation.unwrap().as_count(), Some(2));

    deployment.remove_link(0, 2);
    let after = deployment
        .query(&target)
        .issuer(3)
        .repr(Repr::DerivationCount)
        .execute();
    // The route to c now derives only via b; the query ran after the
    // deletion cascade on the same clock.
    assert_eq!(after.annotation.unwrap().as_count(), Some(1));
    let pc = Tuple::new(
        "pathCost",
        0,
        vec![exspan::types::Value::Node(2), exspan::types::Value::Int(5)],
    );
    assert_eq!(deployment.derivation_count(&pc), 1);
}

#[test]
fn builder_surfaces_configuration_errors() {
    assert!(matches!(
        Exspan::builder().build(),
        Err(BuildError::MissingProgram)
    ));
    assert!(matches!(
        Exspan::builder().program(programs::mincost()).build(),
        Err(BuildError::MissingTopology)
    ));
    assert!(matches!(
        Exspan::builder()
            .program(programs::mincost())
            .topology(Topology::paper_example())
            .mode(ProvenanceMode::Centralized { server: 99 })
            .build(),
        Err(BuildError::CentralizedServerOutOfRange {
            server: 99,
            nodes: 4
        })
    ));
}
