//! Property-based tests over randomly generated small networks: the
//! provenance maintained by ExSPAN must explain exactly the state the
//! protocol computes, regardless of topology.

use exspan::core::storage::{all_prov_entries, prov_entries};
use exspan::core::{Deployment, ProvenanceMode, Repr};
use exspan::ndlog::programs;
use exspan::netsim::{LinkClass, LinkProps, Topology};
use exspan::setup;
use exspan::types::{Tuple, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// A random connected topology of 4–7 nodes with random small link costs.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (
        4usize..=7,
        any::<u64>(),
        proptest::collection::vec(1i64..=4, 0..8),
    )
        .prop_map(|(n, seed, extra_costs)| {
            let mut t = Topology::empty(n);
            let props = |cost| LinkProps {
                cost,
                ..LinkProps::from_class(LinkClass::Custom)
            };
            // A ring guarantees connectivity; costs derived from the seed.
            for i in 0..n {
                let a = i as u32;
                let b = ((i + 1) % n) as u32;
                let cost = 1 + ((seed >> (i % 32)) & 0x3) as i64;
                t.add_link(a, b, props(cost));
            }
            // A few extra random chords.
            for (i, cost) in extra_costs.into_iter().enumerate() {
                let a = (seed.wrapping_add(i as u64 * 7) % n as u64) as u32;
                let b = (seed.wrapping_add(i as u64 * 13 + 3) % n as u64) as u32;
                if a != b && !t.has_link(a, b) {
                    t.add_link(a, b, props(cost));
                }
            }
            t
        })
}

fn run(topology: Topology, mode: ProvenanceMode) -> Deployment {
    setup::converged(programs::mincost(), topology, mode, 1)
}

/// Dijkstra over the link costs, as an independent oracle for MINCOST.
fn oracle_best_costs(topology: &Topology) -> std::collections::BTreeMap<(u32, u32), i64> {
    let n = topology.num_nodes();
    let mut out = std::collections::BTreeMap::new();
    for src in 0..n as u32 {
        let mut dist: Vec<Option<i64>> = vec![None; n];
        dist[src as usize] = Some(0);
        let mut visited = vec![false; n];
        loop {
            let mut best: Option<(usize, i64)> = None;
            for (i, d) in dist.iter().enumerate() {
                if let Some(d) = d {
                    if !visited[i] && best.map_or(true, |(_, bd)| *d < bd) {
                        best = Some((i, *d));
                    }
                }
            }
            let Some((u, du)) = best else { break };
            visited[u] = true;
            for v in topology.neighbors(u as u32) {
                let w = topology.link(u as u32, v).unwrap().cost;
                let nd = du + w;
                if dist[v as usize].map_or(true, |d| nd < d) {
                    dist[v as usize] = Some(nd);
                }
            }
        }
        for (dst, d) in dist.iter().enumerate() {
            if let Some(d) = d {
                if dst as u32 != src {
                    out.insert((src, dst as u32), *d);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// MINCOST with reference-based provenance computes exactly the shortest
    /// path costs (validated against Dijkstra).
    #[test]
    fn mincost_matches_dijkstra(topology in arb_topology()) {
        let system = run(topology.clone(), ProvenanceMode::Reference);
        let oracle = oracle_best_costs(&topology);
        for ((src, dst), cost) in &oracle {
            let tuples = system.tuples_shared(*src, "bestPathCost");
            let found = tuples.iter().find(|t| t.values[0] == Value::Node(*dst));
            prop_assert!(found.is_some(), "missing bestPathCost(@{src},{dst})");
            prop_assert_eq!(found.unwrap().values[1].as_int().unwrap(), *cost);
        }
        // No spurious routes either.
        for n in 0..topology.num_nodes() as u32 {
            for t in system.tuples_shared(n, "bestPathCost") {
                let dst = t.values[0].as_node().unwrap();
                if dst != n {
                    prop_assert!(oracle.contains_key(&(n, dst)));
                }
            }
        }
    }

    /// Every derived tuple has at least one provenance derivation, every base
    /// link has a null-RID entry, and provenance queries terminate with a
    /// positive derivation count that matches the polynomial.
    #[test]
    fn provenance_graph_is_complete_and_queryable(topology in arb_topology()) {
        let mut system = run(topology, ProvenanceMode::Reference);
        let engine = system.engine();
        // Base links have base prov entries.
        for link in engine.tuples_everywhere_shared("link") {
            let entries = prov_entries(engine, link.location, link.vid());
            prop_assert!(entries.iter().any(exspan::core::ProvEntry::is_base), "no base entry for {link}");
        }
        // Derived bestPathCost tuples have non-base prov entries.
        let targets: Vec<Arc<Tuple>> = engine.tuples_everywhere_shared("bestPathCost");
        for t in &targets {
            let entries = prov_entries(engine, t.location, t.vid());
            prop_assert!(!entries.is_empty(), "no prov entry for {t}");
            prop_assert!(entries.iter().all(|e| !e.is_base()));
        }
        prop_assert!(!all_prov_entries(engine).is_empty());

        // Query a sample of tuples: counts and polynomials agree.
        for t in targets.iter().take(3) {
            let poly = system.query(t).repr(Repr::Polynomial).execute();
            let count = system.query(t).repr(Repr::DerivationCount).execute();
            let poly = poly.annotation.unwrap();
            let count = count.annotation.unwrap().as_count().unwrap();
            prop_assert!(count >= 1);
            prop_assert_eq!(poly.as_expr().unwrap().num_derivations(), count);
        }
    }

    /// Incremental deletion of a random link converges to the same routing
    /// state as recomputing from scratch on the reduced topology.
    #[test]
    fn incremental_deletion_equals_recomputation(topology in arb_topology(), pick in any::<u64>()) {
        let links: Vec<(u32, u32)> = topology.links().map(|(a, b, _)| (a, b)).collect();
        let victim = links[(pick % links.len() as u64) as usize];

        let mut incremental = run(topology.clone(), ProvenanceMode::Reference);
        incremental.remove_link(victim.0, victim.1);
        incremental.run_to_fixpoint();

        let mut reduced = topology;
        reduced.remove_link(victim.0, victim.1);
        let scratch = run(reduced, ProvenanceMode::Reference);

        prop_assert_eq!(
            incremental.tuples_everywhere_shared("bestPathCost"),
            scratch.tuples_everywhere_shared("bestPathCost")
        );
    }

    /// The three provenance modes never change the protocol's results, only
    /// its overhead: value-based costs at least as much as reference-based,
    /// which costs at least as much as no provenance.
    #[test]
    fn modes_agree_on_state_and_order_by_cost(topology in arb_topology()) {
        let none = run(topology.clone(), ProvenanceMode::None);
        let reference = run(topology.clone(), ProvenanceMode::Reference);
        let value = run(topology, ProvenanceMode::ValueBdd);
        let state = |s: &Deployment| s.tuples_everywhere_shared("bestPathCost");
        prop_assert_eq!(state(&none), state(&reference));
        prop_assert_eq!(state(&none), state(&value));
        prop_assert!(reference.total_bytes() >= none.total_bytes());
        prop_assert!(value.total_bytes() >= reference.total_bytes());
    }
}
